//! Dynamic work reporting from inside customizing functions.
//!
//! The virtual platform charges compute time for the work kernels declare.
//! Straight-line user functions are covered by the static estimate from
//! their source text ([`crate::codegen::estimate_static_ops`]); functions
//! with data-dependent loops (the Mandelbrot iteration!) call [`work`] to
//! report the operations they actually executed — that is what makes warp
//! divergence visible to the cost model.
//!
//! Reported work flows into the same per-launch cost the observability
//! layer reads: a span ([`crate::trace`]) covering the launch sees the
//! dynamic op count in its `stats.kernel_cu_cycles` delta, and the
//! roofline report ([`crate::report`]) prices it against peak — so a
//! `work`-heavy kernel shows up compute-bound exactly as it is charged,
//! not as its static estimate.

use std::cell::Cell;

thread_local! {
    static METER: Cell<u64> = const { Cell::new(0) };
}

/// Report `ops` units of arithmetic executed by the current customizing
/// function call. A no-op outside kernel execution.
#[inline]
pub fn work(ops: u64) {
    METER.with(|m| m.set(m.get().saturating_add(ops)));
}

/// Run `f` with a fresh meter; returns `(result, dynamic_ops)`.
/// Used by the skeleton implementations around each user-function call.
#[inline]
pub fn metered<R>(f: impl FnOnce() -> R) -> (R, u64) {
    METER.with(|m| {
        let saved = m.replace(0);
        let r = f();
        let ops = m.replace(saved);
        (r, ops)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metered_captures_reported_work() {
        let (v, ops) = metered(|| {
            work(10);
            work(5);
            42
        });
        assert_eq!(v, 42);
        assert_eq!(ops, 15);
    }

    #[test]
    fn meter_nests_without_leaking() {
        let (_, outer) = metered(|| {
            work(1);
            let (_, inner) = metered(|| work(100));
            assert_eq!(inner, 100);
            work(2);
        });
        assert_eq!(outer, 3, "inner meter must not leak into outer");
    }

    #[test]
    fn work_outside_kernel_is_harmless() {
        work(123); // must not panic or poison later meters
        let (_, ops) = metered(|| work(1));
        assert_eq!(ops, 1);
    }
}
