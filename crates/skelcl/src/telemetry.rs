//! Machine-readable telemetry export: schema-versioned JSON for the whole
//! metrics snapshot + [`RunReport`]s, and a Prometheus-style text
//! exposition.
//!
//! The in-process observability layers ([`crate::metrics`],
//! [`crate::trace`], [`crate::report`]) answer "what happened" *inside* a
//! run; this module is how those answers leave the process in a form other
//! tools can consume without parsing human-oriented summary lines:
//!
//! * [`export_json`] — one self-describing document carrying
//!   [`SCHEMA_VERSION`], the full [`crate::Context::metrics_snapshot`]
//!   (every counter, gauge, and histogram with exact nearest-rank
//!   quantiles), and any number of [`RunReport`]s (roofline % of modeled
//!   peak, per-engine utilization, overlap efficiency, latency quantiles,
//!   skelcheck activity, SLO accounting). The bench perf ledger
//!   (`skelcl_bench::ledger`) and the `BENCH_*.json` artifacts build on
//!   this serializer.
//! * [`render_prometheus`] — the same metrics snapshot in Prometheus text
//!   exposition format: counters and gauges as single samples, histograms
//!   as summaries with `quantile="0.5" / "0.9" / "0.99"` series (omitted
//!   for empty histograms — an empty distribution has no quantiles) plus
//!   `_sum` / `_count`.
//!
//! Like the rest of the workspace this is serde-free: the writers reuse
//! `report.rs`'s hand-rolled JSON helpers and the round-trip tests reparse
//! with [`crate::report::json`].
//!
//! # Schema stability
//!
//! `schema_version` is bumped whenever a field is renamed, removed, or
//! changes meaning; *adding* fields is not a bump. Consumers (CI gates,
//! `benchdiff`) must reject documents whose major version they don't know.
//! Empty-distribution edge cases are explicit: an empty histogram
//! serializes `min`/`max`/`p50`/`p90`/`p99` as `null` (never a fabricated
//! 0), a singleton histogram serializes every quantile as that sample, and
//! the `dropped` field counts non-finite samples rejected at `observe`.

use crate::metrics::{HistogramSnapshot, MetricValue};
use crate::report::{json_escape, json_num, RunReport};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Version of the JSON document layout produced by this module (see
/// *Schema stability* in the module docs).
pub const SCHEMA_VERSION: u64 = 1;

/// `Option<f64>` → JSON: `null` when absent, a number otherwise.
fn opt_num(v: Option<f64>) -> String {
    match v {
        Some(v) => json_num(v),
        None => "null".to_string(),
    }
}

/// One histogram snapshot as a JSON object. Empty histograms carry `null`
/// quantiles and min/max; `dropped` is the non-finite-sample reject count.
pub fn histogram_json(h: &HistogramSnapshot) -> String {
    format!(
        "{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"p50\":{},\"p90\":{},\
         \"p99\":{},\"dropped\":{}}}",
        h.count,
        json_num(h.sum),
        opt_num(h.min),
        opt_num(h.max),
        opt_num(h.p50),
        opt_num(h.p90),
        opt_num(h.p99),
        h.dropped,
    )
}

/// One metric value as a self-typed JSON object
/// (`{"type":"counter","value":…}` etc.).
pub fn metric_json(v: &MetricValue) -> String {
    match v {
        MetricValue::Counter(c) => format!("{{\"type\":\"counter\",\"value\":{c}}}"),
        MetricValue::Gauge(g) => {
            format!("{{\"type\":\"gauge\",\"value\":{}}}", json_num(*g))
        }
        MetricValue::Histogram(h) => {
            format!("{{\"type\":\"histogram\",\"value\":{}}}", histogram_json(h))
        }
    }
}

/// A full metrics snapshot (e.g. [`crate::Context::metrics_snapshot`]) as
/// one JSON object keyed by metric name.
pub fn metrics_json(snap: &BTreeMap<String, MetricValue>) -> String {
    let body: Vec<String> = snap
        .iter()
        .map(|(name, v)| format!("\"{}\":{}", json_escape(name), metric_json(v)))
        .collect();
    format!("{{{}}}", body.join(","))
}

/// One [`RunReport`] as a JSON object: label, window, the 13 platform
/// counters, per-device utilization, the roofline verdict (with the
/// derived `% of modeled peak` and bound), overlap efficiency, and the
/// optional latency / skelcheck / SLO sections (`null` when absent).
pub fn run_report_json(r: &RunReport) -> String {
    let mut out = String::new();
    let s = &r.stats;
    let _ = write!(
        out,
        "{{\"label\":\"{}\",\"window_s\":{},\"stats\":{{\
         \"h2d_transfers\":{},\"h2d_bytes\":{},\"d2h_transfers\":{},\"d2h_bytes\":{},\
         \"d2d_transfers\":{},\"d2d_bytes\":{},\"kernel_launches\":{},\
         \"kernel_cu_cycles\":{},\"kernel_global_bytes\":{},\"kernel_busy_ns\":{},\
         \"source_builds\":{},\"cache_loads\":{},\"build_virtual_ns\":{}}}",
        json_escape(&r.label),
        json_num(r.window_s),
        s.h2d_transfers,
        s.h2d_bytes,
        s.d2h_transfers,
        s.d2h_bytes,
        s.d2d_transfers,
        s.d2d_bytes,
        s.kernel_launches,
        s.kernel_cu_cycles,
        s.kernel_global_bytes,
        s.kernel_busy_ns,
        s.source_builds,
        s.cache_loads,
        s.build_virtual_ns,
    );
    let devices: Vec<String> = r
        .devices
        .iter()
        .map(|d| {
            format!(
                "{{\"device\":{},\"compute_busy_s\":{},\"copy_busy_s\":{},\"overlap_s\":{},\
                 \"compute_util\":{},\"copy_util\":{}}}",
                d.device,
                json_num(d.compute_busy_s),
                json_num(d.copy_busy_s),
                json_num(d.overlap_s),
                json_num(d.compute_util(r.window_s)),
                json_num(d.copy_util(r.window_s)),
            )
        })
        .collect();
    let _ = write!(out, ",\"devices\":[{}]", devices.join(","));
    let rf = &r.roofline;
    let _ = write!(
        out,
        ",\"roofline\":{{\"n_devices\":{},\"kernel_cu_cycles\":{},\"kernel_global_bytes\":{},\
         \"link_bytes\":{},\"compute_floor_s\":{},\"memory_floor_s\":{},\"transfer_floor_s\":{},\
         \"peak_ops_s\":{},\"peak_mem_bytes_s\":{},\"peak_link_bytes_s\":{},\
         \"pct_of_modeled_peak\":{},\"bound\":\"{}\"}}",
        rf.n_devices,
        rf.kernel_cu_cycles,
        rf.kernel_global_bytes,
        rf.link_bytes,
        json_num(rf.compute_floor_s),
        json_num(rf.memory_floor_s),
        json_num(rf.transfer_floor_s),
        json_num(rf.peak_ops_s),
        json_num(rf.peak_mem_bytes_s),
        json_num(rf.peak_link_bytes_s),
        json_num(rf.pct_of_modeled_peak()),
        rf.bound(),
    );
    let _ = write!(
        out,
        ",\"total_overlap_s\":{},\"overlap_efficiency\":{}",
        json_num(r.total_overlap_s()),
        json_num(r.overlap_efficiency()),
    );
    match &r.latency {
        Some(lat) => {
            let _ = write!(out, ",\"latency\":{}", histogram_json(lat));
        }
        None => out.push_str(",\"latency\":null"),
    }
    match r.hazards_checked {
        Some(n) => {
            let _ = write!(out, ",\"hazards_checked\":{n}");
        }
        None => out.push_str(",\"hazards_checked\":null"),
    }
    match &r.slo {
        Some(slo) => {
            let _ = write!(
                out,
                ",\"slo\":{{\"target_s\":{},\"deadline_misses\":{},\"jobs\":{},\"shed\":{},\
                 \"miss_rate\":{},\"shed_rate\":{}}}",
                json_num(slo.target_s),
                slo.deadline_misses,
                slo.jobs,
                slo.shed,
                json_num(slo.miss_rate()),
                json_num(slo.shed_rate()),
            );
        }
        None => out.push_str(",\"slo\":null"),
    }
    out.push('}');
    out
}

/// The top-level export document: schema version, one metrics snapshot,
/// and any number of run reports.
pub fn export_json(snap: &BTreeMap<String, MetricValue>, reports: &[RunReport]) -> String {
    let reports: Vec<String> = reports.iter().map(run_report_json).collect();
    format!(
        "{{\"schema_version\":{SCHEMA_VERSION},\"metrics\":{},\"run_reports\":[{}]}}",
        metrics_json(snap),
        reports.join(","),
    )
}

/// Sanitize a metric name into the Prometheus charset
/// (`[a-zA-Z_:][a-zA-Z0-9_:]*`): every other character becomes `_`.
fn prom_name(name: &str) -> String {
    let mut out: String = name
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
                c
            } else {
                '_'
            }
        })
        .collect();
    if out.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        out.insert(0, '_');
    }
    out
}

/// Format a sample value for the exposition text (Prometheus accepts
/// scientific notation; non-finite degrades to 0 like the JSON writer).
fn prom_num(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "0".to_string()
    }
}

/// Render a metrics snapshot in the Prometheus text exposition format.
///
/// Counters and gauges become single samples under their sanitized name
/// (`skelcl.halo.exchanges` → `skelcl_halo_exchanges`). Histograms become
/// summaries: `quantile="0.5"/"0.9"/"0.99"` series (omitted when the
/// histogram is empty) plus `_sum` and `_count`, and a companion
/// `<name>_dropped` counter when non-finite samples were rejected.
pub fn render_prometheus(snap: &BTreeMap<String, MetricValue>) -> String {
    let mut out = String::new();
    for (name, v) in snap {
        let pname = prom_name(name);
        match v {
            MetricValue::Counter(c) => {
                let _ = writeln!(out, "# TYPE {pname} counter");
                let _ = writeln!(out, "{pname} {c}");
            }
            MetricValue::Gauge(g) => {
                let _ = writeln!(out, "# TYPE {pname} gauge");
                let _ = writeln!(out, "{pname} {}", prom_num(*g));
            }
            MetricValue::Histogram(h) => {
                let _ = writeln!(out, "# TYPE {pname} summary");
                for (q, val) in [("0.5", h.p50), ("0.9", h.p90), ("0.99", h.p99)] {
                    if let Some(val) = val {
                        let _ = writeln!(out, "{pname}{{quantile=\"{q}\"}} {}", prom_num(val));
                    }
                }
                let _ = writeln!(out, "{pname}_sum {}", prom_num(h.sum));
                let _ = writeln!(out, "{pname}_count {}", h.count);
                if h.dropped > 0 {
                    let _ = writeln!(out, "# TYPE {pname}_dropped counter");
                    let _ = writeln!(out, "{pname}_dropped {}", h.dropped);
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{Histogram, MetricsRegistry};
    use crate::report::json::parse;
    use crate::report::SloSummary;
    use vgpu::StatsSnapshot;

    fn sample_snapshot() -> BTreeMap<String, MetricValue> {
        let reg = MetricsRegistry::default();
        reg.counter("skelcl.test.calls").add(7);
        reg.gauge("skelcl.test.util").set(0.5);
        let h = reg.histogram("skelcl.test.latency_s");
        h.observe(1e-3);
        h.observe(2e-3);
        h.observe(f64::NAN);
        reg.histogram("skelcl.test.empty");
        reg.counter("weird name/with-specials").inc();
        reg.snapshot()
    }

    #[test]
    fn export_is_valid_schema_versioned_json() {
        let snap = sample_snapshot();
        let doc = parse(&export_json(&snap, &[])).expect("exporter must emit valid JSON");
        assert_eq!(
            doc.get("schema_version").unwrap().as_num(),
            Some(SCHEMA_VERSION as f64)
        );
        let metrics = doc.get("metrics").unwrap();
        assert_eq!(
            metrics
                .get("skelcl.test.calls")
                .unwrap()
                .get("value")
                .unwrap()
                .as_num(),
            Some(7.0)
        );
        let hist = metrics
            .get("skelcl.test.latency_s")
            .unwrap()
            .get("value")
            .unwrap();
        assert_eq!(hist.get("count").unwrap().as_num(), Some(2.0));
        assert_eq!(hist.get("dropped").unwrap().as_num(), Some(1.0));
        assert_eq!(hist.get("p99").unwrap().as_num(), Some(2e-3));
        // Empty histogram: quantiles and min/max are null, never zero.
        let empty = metrics
            .get("skelcl.test.empty")
            .unwrap()
            .get("value")
            .unwrap();
        assert_eq!(empty.get("count").unwrap().as_num(), Some(0.0));
        for key in ["min", "max", "p50", "p90", "p99"] {
            assert_eq!(
                empty.get(key),
                Some(&crate::report::json::Json::Null),
                "{key} of an empty histogram must be null"
            );
        }
    }

    #[test]
    fn singleton_histogram_exports_the_sample_as_every_quantile() {
        let h = Histogram::default();
        h.observe(4.25);
        let doc = parse(&histogram_json(&h.snapshot())).unwrap();
        for key in ["min", "max", "p50", "p90", "p99"] {
            assert_eq!(doc.get(key).unwrap().as_num(), Some(4.25), "{key}");
        }
    }

    #[test]
    fn run_report_exports_roofline_latency_and_slo() {
        let platform = vgpu::Platform::new(
            vgpu::PlatformConfig::default()
                .devices(1)
                .spec(vgpu::DeviceSpec::tiny())
                .cache_tag("telemetry-report-test"),
        );
        let h = Histogram::default();
        h.observe(1e-3);
        let report = RunReport::collect(
            "exp ort\"label",
            &platform,
            1.0,
            StatsSnapshot::default(),
            &[],
            1e-3,
        )
        .with_latency(h.snapshot())
        .with_hazards_checked(3)
        .with_slo(SloSummary {
            target_s: 5e-3,
            deadline_misses: 1,
            jobs: 10,
            shed: 2,
        });
        let doc = parse(&run_report_json(&report)).expect("valid JSON");
        assert_eq!(doc.get("label").unwrap().as_str(), Some("exp ort\"label"));
        let roofline = doc.get("roofline").unwrap();
        assert!(roofline
            .get("pct_of_modeled_peak")
            .unwrap()
            .as_num()
            .is_some());
        assert!(roofline.get("bound").unwrap().as_str().is_some());
        assert_eq!(
            doc.get("latency").unwrap().get("count").unwrap().as_num(),
            Some(1.0)
        );
        assert_eq!(doc.get("hazards_checked").unwrap().as_num(), Some(3.0));
        let slo = doc.get("slo").unwrap();
        assert_eq!(slo.get("deadline_misses").unwrap().as_num(), Some(1.0));
        assert_eq!(slo.get("shed").unwrap().as_num(), Some(2.0));
        assert!((slo.get("shed_rate").unwrap().as_num().unwrap() - 2.0 / 12.0).abs() < 1e-12);

        // Without the optional sections, the keys are null, not absent.
        let plain = RunReport::collect("p", &platform, 1.0, StatsSnapshot::default(), &[], 1e-3);
        let doc = parse(&run_report_json(&plain)).unwrap();
        for key in ["latency", "hazards_checked", "slo"] {
            assert_eq!(
                doc.get(key),
                Some(&crate::report::json::Json::Null),
                "{key}"
            );
        }
    }

    #[test]
    fn prometheus_rendering_sanitizes_and_summarises() {
        let text = render_prometheus(&sample_snapshot());
        assert!(text.contains("# TYPE skelcl_test_calls counter"), "{text}");
        assert!(text.contains("skelcl_test_calls 7"), "{text}");
        assert!(text.contains("# TYPE skelcl_test_util gauge"), "{text}");
        assert!(
            text.contains("skelcl_test_latency_s{quantile=\"0.99\"} 0.002"),
            "{text}"
        );
        assert!(text.contains("skelcl_test_latency_s_count 2"), "{text}");
        assert!(text.contains("skelcl_test_latency_s_dropped 1"), "{text}");
        // Empty histogram: no quantile series, but sum/count still present.
        assert!(!text.contains("skelcl_test_empty{quantile"), "{text}");
        assert!(text.contains("skelcl_test_empty_count 0"), "{text}");
        // Name sanitization covers spaces, slashes, and dashes.
        assert!(text.contains("weird_name_with_specials 1"), "{text}");
    }
}
