//! The AllPairs skeleton: `C[i][j] = f(row_i(A), col_j(B))` over
//! [`Matrix`] operands — SkelCL's later `AllPairs(M, N)` extension that
//! opens the dense-linear-algebra workload class (matrix multiplication,
//! pairwise distances, k-NN scoring).
//!
//! Like SkelCL's fast AllPairs implementation, the customizing function is
//! restricted to the **zip-reduce form**: a `zip` function combines the
//! paired elements `A[i][k]` and `B[k][j]`, and an associative `reduce`
//! function folds the `k` partial results (matrix multiplication is
//! `zip = ×`, `reduce = +`). This restriction is what admits the
//! local-memory tiled variant: because the reduction is a left fold in
//! ascending `k`, a work-group can stage `tile × tile` blocks of the A-row
//! strip and B-column strip in local memory and combine from there, cutting
//! global traffic by a factor of `tile` without changing the floating-point
//! evaluation order — naive and tiled results are **bit-identical**.
//!
//! Multi-device execution partitions `C`'s rows: `A` distributes by row
//! blocks, and `B` is replicated (a `Copy` or column-block `B` is
//! redistributed automatically, device-to-device when its data is already
//! device-fresh — no host round trips for intermediates).
//!
//! When `B`'s freshest data is on the **host**, the replication is
//! event-driven: each device's copy of `B` is uploaded as asynchronous
//! chunked writes on that device's copy stream, and the kernels are
//! launched with explicit event dependencies (a per-device marker joining
//! previously scheduled work, plus the device's last replication chunk)
//! instead of device-serializing. The upload therefore slides *under*
//! whatever kernels are already in flight on the compute engine — e.g.
//! other tenants' kernels when AllPairs jobs run inside the executor
//! service — while the math stays bit-identical to the blocking path.

use crate::codegen::{self, FusedStage, UserFn};
use crate::error::{Error, Result};
use crate::matrix::{Matrix, MatrixDistribution};
use crate::meter;
use crate::skeletons::range_2d;
use std::marker::PhantomData;
use std::sync::Arc;
use vgpu::{Event, KernelBody, NDRange, Program, Scalar as Element};

/// Row granularity of the streamed B-replication upload: small enough that
/// the first chunks land while later ones are still crossing PCIe, large
/// enough that per-transfer latency stays amortised.
const B_REPLICATION_CHUNK_ROWS: usize = 64;

/// Which parallelisation [`AllPairs::apply`] uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AllPairsStrategy {
    /// One work-item per output element, streaming both operands from
    /// global memory (`2k` loads per element).
    Naive,
    /// Work-groups of `tile × tile` items stage an A-row-strip tile and a
    /// B-col-strip tile in local memory per inner-dimension step, so each
    /// operand element is loaded from global memory once per *group*
    /// instead of once per *item*. The tile dimension is clamped to the
    /// context's work-group budget and the device's local-memory capacity.
    Tiled { tile: usize },
}

impl Default for AllPairsStrategy {
    fn default() -> Self {
        AllPairsStrategy::Tiled { tile: 16 }
    }
}

/// A post stage fused into the AllPairs write: the stage descriptor used
/// for codegen plus the type-erased Rust twin applied to each folded value.
type PostFn<U> = Arc<dyn Fn(U) -> U + Send + Sync>;
type PostStage<U> = (FusedStage, PostFn<U>);

/// The AllPairs skeleton, customized by a zip function, an associative
/// reduce function and the reduction's identity element.
pub struct AllPairs<T: Element, U: Element, Fz, Fr> {
    zip: UserFn<Fz>,
    reduce: UserFn<Fr>,
    identity: U,
    strategy: AllPairsStrategy,
    post: Vec<PostStage<U>>,
    _pd: PhantomData<fn(T, T) -> U>,
}

impl<T, U, Fz, Fr> AllPairs<T, U, Fz, Fr>
where
    T: Element,
    U: Element,
    Fz: Fn(T, T) -> U + Send + Sync + Clone + 'static,
    Fr: Fn(U, U) -> U + Send + Sync + Clone + 'static,
{
    /// `AllPairs<float> mm(mult, sum, 0.0)` — matrix multiplication when
    /// `zip` multiplies and `reduce` adds from `identity = 0`.
    pub fn new(zip: UserFn<Fz>, reduce: UserFn<Fr>, identity: U) -> Self {
        AllPairs {
            zip,
            reduce,
            identity,
            strategy: AllPairsStrategy::default(),
            post: Vec::new(),
            _pd: PhantomData,
        }
    }

    /// Select the execution strategy (default: tiled with 16×16 tiles).
    pub fn with_strategy(mut self, strategy: AllPairsStrategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Fuse an element-wise post stage into the write of every output
    /// element: `C[i][j] = post(fold(...))` in the same kernel, with no
    /// intermediate matrix. Stages accumulate in call order and become part
    /// of the generated program (and its cache key). This is how a
    /// pipeline's trailing `map` chain lands on an AllPairs anchor — e.g.
    /// a fused `sqrt` turns the zip-reduce of squared differences into
    /// Euclidean pairwise distances in one launch.
    pub fn with_post<Fp>(mut self, user: UserFn<Fp>) -> Self
    where
        Fp: Fn(U) -> U + Send + Sync + Clone + 'static,
    {
        let stage = FusedStage::new("map", user.name(), user.source(), user.static_ops());
        let f = user.func().clone();
        self.post.push((stage, Arc::new(f)));
        self
    }

    pub fn strategy(&self) -> AllPairsStrategy {
        self.strategy
    }

    /// The generated naive program (exposed for the cache experiments).
    /// With fused post stages the fused builder is used, so the post chain
    /// is part of the program name and the kernel cache key.
    pub fn program(&self) -> Program {
        if self.post.is_empty() {
            codegen::allpairs_program(
                self.zip.name(),
                self.zip.source(),
                self.reduce.name(),
                self.reduce.source(),
                T::TYPE_NAME,
                U::TYPE_NAME,
            )
        } else {
            self.fused_program(0)
        }
    }

    /// The generated tiled program for a given tile dimension; the tile is
    /// part of the program name and therefore of the kernel cache key.
    pub fn tiled_program(&self, tile: usize) -> Program {
        if self.post.is_empty() {
            codegen::allpairs_tiled_program(
                self.zip.name(),
                self.zip.source(),
                self.reduce.name(),
                self.reduce.source(),
                T::TYPE_NAME,
                U::TYPE_NAME,
                tile,
            )
        } else {
            self.fused_program(tile)
        }
    }

    fn fused_program(&self, tile: usize) -> Program {
        let stages: Vec<FusedStage> = self.post.iter().map(|(s, _)| s.clone()).collect();
        codegen::fused_allpairs_program(
            self.zip.name(),
            self.zip.source(),
            self.reduce.name(),
            self.reduce.source(),
            &stages,
            T::TYPE_NAME,
            U::TYPE_NAME,
            tile,
        )
    }

    /// The largest usable tile dimension: the requested tile halved until
    /// `tile²` fits the context's work-group budget and two `tile²` operand
    /// tiles fit the device's local memory.
    fn effective_tile(&self, ctx: &crate::context::Context, requested: usize) -> usize {
        let spec = *ctx.device(0).spec();
        let wg_budget = ctx.work_group().min(spec.max_work_group).max(1);
        let elem = std::mem::size_of::<T>().max(1);
        let mut tile = requested.max(1);
        while tile > 1 && (tile * tile > wg_budget || 2 * tile * tile * elem > spec.local_mem_bytes)
        {
            tile /= 2;
        }
        tile
    }

    /// Apply the skeleton: `C[i][j] = reduce(identity, zip(A[i][k], B[k][j]))`
    /// folded in ascending `k`. `A` (an `m×k` matrix) keeps — or is moved
    /// to — a row-based distribution; `B` (`k×n`) is replicated to every
    /// device holding rows of `A` (device-to-device when already resident).
    /// The output inherits `A`'s distribution, rows partitioned like `A`'s.
    pub fn apply(&self, a: &Matrix<T>, b: &Matrix<T>) -> Result<Matrix<U>> {
        let (m, ka) = a.dims();
        let (kb, n) = b.dims();
        if ka != kb {
            return Err(Error::InnerDimMismatch {
                left: (m, ka),
                right: (kb, n),
            });
        }
        let ctx = a.ctx().clone();
        let mut span = ctx.span("allpairs.apply");
        span.attr("shape", format!("{m}x{ka}x{n}"));
        span.attr("distribution", format!("{:?}", a.distribution()));
        span.attr("devices", ctx.n_devices().to_string());

        // A's parts must hold full rows; a column-block A is re-laid out
        // (device-side when fresh) into row blocks.
        if !a.distribution().is_full_width() {
            a.set_distribution(MatrixDistribution::row_block())?;
        }
        // Every device computing rows of C needs all of B.
        let a_parts = a.parts_with_fresh_halos()?;
        let full_b_on = |parts: &[crate::matrix::MatrixPart<T>], device: usize| {
            parts
                .iter()
                .any(|p| p.device == device && p.rows == kb && p.cols == n)
        };
        // Host-fresh B: replicate it event-driven — markers join each
        // device's already-scheduled work (A's upload, in-flight kernels),
        // then the per-device copies stream as async chunked writes on the
        // copy streams, and each kernel below waits on exactly (marker,
        // last replication chunk) instead of serializing on the device.
        // Device-fresh B: gathered by device-to-device exchange as before,
        // never through the host, with classic device-serializing launches.
        let (b_parts, b_chunks, b_markers) = if !b.device_fresh() {
            b.set_distribution(MatrixDistribution::Copy)?;
            let markers: Vec<Event> = (0..ctx.n_devices())
                .map(|d| ctx.queue(d).enqueue_marker())
                .collect();
            let (parts, chunks) = b.parts_with_upload_chunks(B_REPLICATION_CHUNK_ROWS)?;
            (parts, chunks, Some(markers))
        } else {
            let mut b_parts = b.parts()?;
            if a_parts
                .iter()
                .filter(|p| p.rows > 0)
                .any(|p| !full_b_on(&b_parts, p.device))
            {
                b.set_distribution(MatrixDistribution::Copy)?;
                b_parts = b.parts()?;
            }
            (b_parts, Vec::new(), None)
        };

        let (compiled, tile) = match self.strategy {
            AllPairsStrategy::Naive => (ctx.get_or_build(&self.program())?, 0),
            AllPairsStrategy::Tiled { tile } => {
                let tile = self.effective_tile(&ctx, tile);
                (ctx.get_or_build(&self.tiled_program(tile))?, tile)
            }
        };

        // Output parts mirror A's row geometry at C's width. Halo rows are
        // computed too (their input rows — full A rows plus all of B — are
        // resident), so the output's halos are coherent from the start.
        let mut out_parts = Vec::with_capacity(a_parts.len());
        for p in &a_parts {
            out_parts.push(crate::matrix::MatrixPart {
                device: p.device,
                row_offset: p.row_offset,
                rows: p.rows,
                halo_above: p.halo_above,
                halo_below: p.halo_below,
                col_offset: 0,
                cols: n,
                buffer: ctx.device(p.device).alloc::<U>(p.span_rows() * n)?,
            });
        }

        // Static per-k cost of one zip + one reduce application, plus the
        // once-per-element cost of the fused post chain.
        let step_ops = self.zip.static_ops() + self.reduce.static_ops();
        let post_ops: u64 = self.post.iter().map(|(s, _)| s.static_ops).sum();
        let post_fns: Arc<Vec<PostFn<U>>> =
            Arc::new(self.post.iter().map(|(_, f)| f.clone()).collect());
        let elem_bytes = std::mem::size_of::<T>();
        for (ap, op) in a_parts.iter().zip(&out_parts) {
            if ap.rows == 0 || n == 0 {
                continue;
            }
            let bi = b_parts
                .iter()
                .position(|p| p.device == ap.device && p.rows == kb && p.cols == n)
                .expect("B was just replicated to every computing device");
            let bp = &b_parts[bi];
            // Kernel-body snapshots of the device-resident operands: the
            // inner loop runs k times per output element, so per-access
            // counted reads would dominate wall time; traffic and work are
            // charged in bulk per item instead (see `it.traffic_read`).
            let a_snap: Arc<Vec<T>> = Arc::new(ap.buffer.to_vec());
            let b_snap: Arc<Vec<T>> = Arc::new(bp.buffer.to_vec());
            let b_base = bp.halo_above * n;
            let zip = self.zip.func().clone();
            let red = self.reduce.func().clone();
            let post = post_fns.clone();
            let identity = self.identity;
            let dst = op.buffer.clone();
            let span_rows = ap.span_rows();

            // Both strategies compute the same ascending-k left fold per
            // element (that is what makes naive and tiled bit-identical);
            // they differ only in staging and in how much global traffic
            // each item is charged — naive streams both operands per k
            // step, tiled loads one element of each operand per k-tile and
            // serves the rest from local memory.
            let staging = (tile > 0).then(|| (tile, ka.div_ceil(tile)));
            let per_item_bytes = match staging {
                None => 2 * ka * elem_bytes,
                Some((_, n_ktiles)) => 2 * n_ktiles * elem_bytes,
            };
            let body: KernelBody = Arc::new(move |wg| {
                if let Some((tile, n_ktiles)) = staging {
                    // The staging tiles: allocated so the device's
                    // local-memory budget is enforced and the footprint
                    // shows up in the cost model. The load patterns
                    // (broadcast for the A tile, unit-stride for the B
                    // tile) are bank-conflict-free, so no conflict passes
                    // are recorded.
                    let _a_tile = wg.local_buf::<T>(tile * tile);
                    let _b_tile = wg.local_buf::<T>(tile * tile);
                    for _ in 0..n_ktiles {
                        wg.barrier(); // after staging the tiles
                        wg.barrier(); // before overwriting them
                    }
                }
                wg.for_each_item(|it| {
                    if !it.in_bounds() {
                        return;
                    }
                    let col = it.global_id(0);
                    let s = it.global_id(1);
                    let a_row = &a_snap[s * ka..(s + 1) * ka];
                    let (acc, dyn_ops) = meter::metered(|| {
                        let mut acc = identity;
                        for (kk, &x) in a_row.iter().enumerate() {
                            acc = red(acc, zip(x, b_snap[b_base + kk * n + col]));
                        }
                        for f in post.iter() {
                            acc = f(acc);
                        }
                        acc
                    });
                    it.write(&dst, s * n + col, acc);
                    it.work(ka as u64 * step_ops + post_ops + dyn_ops);
                    it.traffic_read(per_item_bytes);
                });
            });
            let nd = match staging {
                None => range_2d(&ctx, n, span_rows),
                Some((tile, _)) => NDRange::two_d((n, span_rows), (tile, tile)),
            };
            match &b_markers {
                Some(markers) => {
                    let mut deps = vec![markers[ap.device].clone()];
                    if let Some(chunk) = b_chunks.get(bi).and_then(|c| c.last()) {
                        deps.push(chunk.event.clone());
                    }
                    ctx.queue(ap.device)
                        .launch_async(&compiled.with_body(body), nd, &deps)?;
                }
                None => {
                    ctx.queue(ap.device).launch(&compiled.with_body(body), nd)?;
                }
            }
        }

        Ok(Matrix::from_device_parts(
            &ctx,
            m,
            n,
            a.distribution(),
            out_parts,
            true,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::skeletons::test_support::ctx;

    type AllPairsF32 = AllPairs<f32, f32, fn(f32, f32) -> f32, fn(f32, f32) -> f32>;

    fn matmul_skel() -> AllPairsF32 {
        AllPairs::new(
            crate::skel_fn!(
                fn mult(x: f32, y: f32) -> f32 {
                    x * y
                }
            ),
            crate::skel_fn!(
                fn sum(x: f32, y: f32) -> f32 {
                    x + y
                }
            ),
            0.0,
        )
    }

    fn test_data(rows: usize, cols: usize, salt: u32) -> Vec<f32> {
        (0..rows * cols)
            .map(|i| {
                (((i as u32).wrapping_mul(2654435761).wrapping_add(salt) % 1000) as f32) / 8.0
                    - 60.0
            })
            .collect()
    }

    /// The sequential truth: identical fold order (ascending k from the
    /// identity) to both device strategies.
    fn reference_matmul(a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
        let mut c = Vec::with_capacity(m * n);
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0f32;
                for kk in 0..k {
                    acc += a[i * k + kk] * b[kk * n + j];
                }
                c.push(acc);
            }
        }
        c
    }

    #[test]
    fn matmul_matches_reference_on_one_device() {
        let c = ctx(1);
        let (m, k, n) = (9, 7, 11);
        let (da, db) = (test_data(m, k, 1), test_data(k, n, 2));
        let a = Matrix::from_vec(&c, m, k, da.clone());
        let b = Matrix::from_vec(&c, k, n, db.clone());
        let got = matmul_skel().apply(&a, &b).unwrap().to_vec().unwrap();
        let want = reference_matmul(&da, &db, m, k, n);
        assert_eq!(got, want);
    }

    #[test]
    fn naive_and_tiled_are_bit_identical_across_device_counts() {
        let (m, k, n) = (13, 17, 10);
        let (da, db) = (test_data(m, k, 3), test_data(k, n, 4));
        let want: Vec<u32> = reference_matmul(&da, &db, m, k, n)
            .iter()
            .map(|v| v.to_bits())
            .collect();
        for devices in [1usize, 2, 4] {
            for strategy in [
                AllPairsStrategy::Naive,
                AllPairsStrategy::Tiled { tile: 16 },
            ] {
                let c = ctx(devices);
                let a = Matrix::from_vec(&c, m, k, da.clone());
                let b = Matrix::from_vec(&c, k, n, db.clone());
                let got: Vec<u32> = matmul_skel()
                    .with_strategy(strategy)
                    .apply(&a, &b)
                    .unwrap()
                    .to_vec()
                    .unwrap()
                    .iter()
                    .map(|v| v.to_bits())
                    .collect();
                assert_eq!(got, want, "{devices} devices, {strategy:?}");
            }
        }
    }

    #[test]
    fn col_block_b_is_gathered_device_side() {
        let devices = 3;
        let c = ctx(devices);
        let (m, k, n) = (12, 8, 9);
        let (da, db) = (test_data(m, k, 5), test_data(k, n, 6));
        let a = Matrix::from_vec(&c, m, k, da.clone());
        let b = Matrix::from_vec(&c, k, n, db.clone());
        b.set_distribution(MatrixDistribution::ColBlock).unwrap();
        b.ensure_on_devices().unwrap();
        b.mark_devices_modified(); // device copies are the truth now
        let before = c.platform().stats_snapshot();
        let got = matmul_skel().apply(&a, &b).unwrap();
        let delta = c.platform().stats_snapshot() - before;
        assert!(
            delta.d2d_transfers > 0,
            "gathering a ColBlock B must go device-to-device"
        );
        assert_eq!(delta.d2h_transfers, 0, "no host round trip for B");
        assert_eq!(got.to_vec().unwrap(), reference_matmul(&da, &db, m, k, n));
    }

    #[test]
    fn inner_dimension_mismatch_is_rejected() {
        let c = ctx(1);
        let a = Matrix::from_vec(&c, 3, 4, vec![0.0f32; 12]);
        let b = Matrix::from_vec(&c, 5, 2, vec![0.0f32; 10]);
        let err = matmul_skel().apply(&a, &b).unwrap_err();
        assert!(matches!(err, Error::InnerDimMismatch { .. }));
        assert!(err.to_string().contains("3x4"));
        assert!(err.to_string().contains("5x2"));
    }

    #[test]
    fn tile_dimension_is_part_of_the_cache_key() {
        let s = matmul_skel();
        let t8 = s.tiled_program(8).hash();
        let t16 = s.tiled_program(16).hash();
        let naive = s.program().hash();
        assert_ne!(t8, t16, "tile dims must produce distinct programs");
        assert_ne!(t8, naive);
    }

    #[test]
    fn oversized_tile_is_clamped_to_the_work_group_budget() {
        // test contexts use a 64-item work-group budget: a 16×16 tile (256
        // items) must clamp down to 8×8 rather than fail the launch.
        let c = ctx(2);
        let (m, k, n) = (20, 33, 18);
        let (da, db) = (test_data(m, k, 7), test_data(k, n, 8));
        let a = Matrix::from_vec(&c, m, k, da.clone());
        let b = Matrix::from_vec(&c, k, n, db.clone());
        let got = matmul_skel()
            .with_strategy(AllPairsStrategy::Tiled { tile: 16 })
            .apply(&a, &b)
            .unwrap();
        assert_eq!(got.to_vec().unwrap(), reference_matmul(&da, &db, m, k, n));
    }

    #[test]
    fn tiled_beats_naive_in_the_virtual_timeline() {
        let c = ctx(1);
        let (m, k, n) = (96, 96, 96);
        let a = Matrix::from_vec(&c, m, k, test_data(m, k, 9));
        let b = Matrix::from_vec(&c, k, n, test_data(k, n, 10));
        a.ensure_on_devices().unwrap();
        b.ensure_on_devices().unwrap();
        let s = matmul_skel();
        // Warm the program cache so only kernel time is compared.
        s.apply(&a, &b).unwrap();
        s.with_strategy(AllPairsStrategy::Naive)
            .apply(&a, &b)
            .unwrap();

        c.platform().reset_clocks();
        matmul_skel().apply(&a, &b).unwrap();
        c.sync();
        let t_tiled = c.host_now_s();

        c.platform().reset_clocks();
        matmul_skel()
            .with_strategy(AllPairsStrategy::Naive)
            .apply(&a, &b)
            .unwrap();
        c.sync();
        let t_naive = c.host_now_s();
        assert!(
            t_tiled < t_naive,
            "local-memory tiling must model faster: tiled={t_tiled} naive={t_naive}"
        );
    }

    #[test]
    fn empty_inner_dimension_yields_the_identity() {
        let c = ctx(2);
        let a = Matrix::from_vec(&c, 4, 0, vec![]);
        let b = Matrix::from_vec(&c, 0, 3, vec![]);
        let got = matmul_skel().apply(&a, &b).unwrap().to_vec().unwrap();
        assert_eq!(got, vec![0.0f32; 12]);
    }

    #[test]
    fn host_fresh_b_replication_overlaps_prior_kernels() {
        let c = ctx(1);
        let (m, k, n) = (48, 64, 48);
        let (da, db) = (test_data(m, k, 13), test_data(k, n, 14));
        let s = matmul_skel();
        let a = Matrix::from_vec(&c, m, k, da.clone());
        a.ensure_on_devices().unwrap();
        // Warm the program cache so the timed window is pure scheduling.
        s.apply(&a, &Matrix::from_vec(&c, k, n, db.clone()))
            .unwrap();
        c.sync();
        c.platform().reset_clocks();
        c.platform().enable_timeline_trace();

        // An in-flight kernel on the compute engine: classic launches do
        // not block the host, so the streamed replication below has a
        // window to slide under.
        let b_resident = Matrix::from_vec(&c, k, n, db.clone());
        b_resident.ensure_on_devices().unwrap();
        s.apply(&a, &b_resident).unwrap();

        // Host-fresh B: replication must ride the copy stream *under* the
        // kernel above instead of serializing behind it.
        let b_fresh = Matrix::from_vec(&c, k, n, db.clone());
        let got = s.apply(&a, &b_fresh).unwrap();
        c.sync();
        let trace = c.platform().take_timeline_trace();
        let overlap: f64 = vgpu::compute_copy_overlap_s(&trace)
            .into_iter()
            .map(|(_, s)| s)
            .sum();
        assert!(
            overlap > 0.0,
            "streamed B replication must overlap the in-flight kernel"
        );
        assert_eq!(
            got.to_vec().unwrap(),
            reference_matmul(&da, &db, m, k, n),
            "event-driven replication must stay bit-identical"
        );
    }

    #[test]
    fn fused_post_stage_matches_separate_map_bitwise() {
        let sqrt_abs = || {
            crate::skel_fn!(
                fn sqrt_abs(x: f32) -> f32 {
                    x.abs().sqrt()
                }
            )
        };
        let (m, k, n) = (11, 9, 8);
        let (da, db) = (test_data(m, k, 15), test_data(k, n, 16));
        for devices in [1usize, 2, 4] {
            for strategy in [
                AllPairsStrategy::Naive,
                AllPairsStrategy::Tiled { tile: 16 },
            ] {
                let c = ctx(devices);
                let a = Matrix::from_vec(&c, m, k, da.clone());
                let b = Matrix::from_vec(&c, k, n, db.clone());
                let fused: Vec<u32> = matmul_skel()
                    .with_strategy(strategy)
                    .with_post(sqrt_abs())
                    .apply(&a, &b)
                    .unwrap()
                    .to_vec()
                    .unwrap()
                    .iter()
                    .map(|v| v.to_bits())
                    .collect();
                let plain = matmul_skel().with_strategy(strategy).apply(&a, &b).unwrap();
                let unfused: Vec<u32> = crate::Map::new(sqrt_abs())
                    .apply_matrix(&plain)
                    .unwrap()
                    .to_vec()
                    .unwrap()
                    .iter()
                    .map(|v| v.to_bits())
                    .collect();
                assert_eq!(fused, unfused, "{devices} devices, {strategy:?}");
            }
        }
    }

    #[test]
    fn fused_post_stage_changes_the_program_cache_key() {
        let sq = crate::skel_fn!(
            fn sq(x: f32) -> f32 {
                x * x
            }
        );
        let plain = matmul_skel();
        let fused = matmul_skel().with_post(sq);
        assert_ne!(plain.program().hash(), fused.program().hash());
        assert_ne!(plain.tiled_program(8).hash(), fused.tiled_program(8).hash());
    }

    #[test]
    fn more_devices_than_rows_still_agrees() {
        let c = ctx(4);
        let (m, k, n) = (2, 6, 5);
        let (da, db) = (test_data(m, k, 11), test_data(k, n, 12));
        let a = Matrix::from_vec(&c, m, k, da.clone());
        let b = Matrix::from_vec(&c, k, n, db.clone());
        let got = matmul_skel().apply(&a, &b).unwrap().to_vec().unwrap();
        assert_eq!(got, reference_matmul(&da, &db, m, k, n));
    }
}
