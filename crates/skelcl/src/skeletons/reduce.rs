//! The Reduce skeleton (paper eq. (3)):
//! `reduce ⊕ [x0, ..., xn-1] = x0 ⊕ ... ⊕ xn-1`.
//!
//! "SkelCL requires the operator to be associative, such that it can be
//! applied to arbitrarily sized subranges of the input vector in parallel.
//! The final result is obtained by recursively combining the intermediate
//! results for the subranges. To improve the performance, SkelCL saves the
//! intermediate results in the device's fast local memory."
//!
//! The implementation is the classic two-level scheme: work-groups reduce
//! their tile in local memory with sequential (conflict-free) addressing,
//! writing one partial per group; passes repeat until one value per device
//! remains; device results are combined on the host. The naive
//! global-memory strategy is retained for the ablation experiment (E9).

use crate::codegen::{self, UserFn};
use crate::error::{Error, Result};
use crate::meter;
use crate::scalar::Scalar;
use crate::skeletons::linear_range;
use crate::vector::Vector;
use std::marker::PhantomData;
use std::sync::Arc;
use vgpu::{Buffer, KernelBody, NDRange, Program, Scalar as Element, WorkGroup};

/// Which parallelisation the skeleton uses; `LocalTree` is SkelCL's real
/// strategy, `GlobalNaive` exists for the ablation benchmark.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ReduceStrategy {
    /// Local-memory tree with sequential addressing (the paper's design).
    #[default]
    LocalTree,
    /// One atomic-free pass per element pair through global memory.
    GlobalNaive,
}

/// The Reduce skeleton, customized by an associative binary operator and
/// its identity element.
pub struct Reduce<T: Element, F> {
    user: UserFn<F>,
    identity: T,
    strategy: ReduceStrategy,
    program: Program,
    _pd: PhantomData<fn(T, T) -> T>,
}

impl<T, F> Reduce<T, F>
where
    T: Element,
    F: Fn(T, T) -> T + Send + Sync + Clone + 'static,
{
    /// `Reduce<float> sum("float sum(float x,float y){return x+y;}")` —
    /// plus the operator's identity, used to pad partial work-groups.
    pub fn new(user: UserFn<F>, identity: T) -> Self {
        let program = codegen::reduce_program(user.name(), user.source(), T::TYPE_NAME);
        Reduce {
            user,
            identity,
            strategy: ReduceStrategy::LocalTree,
            program,
            _pd: PhantomData,
        }
    }

    /// Select the ablation strategy (default: the paper's local-memory tree).
    pub fn with_strategy(mut self, strategy: ReduceStrategy) -> Self {
        self.strategy = strategy;
        self
    }

    pub fn program(&self) -> &Program {
        &self.program
    }

    /// Apply the skeleton: per-device tree reduction, then a final host
    /// combine across devices. Returns the paper's `Scalar` wrapper.
    pub fn apply(&self, input: &Vector<T>) -> Result<Scalar<T>> {
        if input.is_empty() {
            return Err(Error::Empty("reduce"));
        }
        let ctx = input.ctx().clone();
        let mut span = ctx.span("reduce.apply");
        span.attr("len", input.len().to_string());
        span.attr("distribution", format!("{:?}", input.distribution()));
        span.attr("devices", ctx.n_devices().to_string());
        let compiled = ctx.get_or_build(&self.program)?;
        let parts = input.parts()?;

        // Under Copy distribution every device has the full data; reducing
        // on one device is sufficient (and what SkelCL does).
        let active: Vec<_> = match input.distribution() {
            crate::vector::Distribution::Copy => parts.into_iter().take(1).collect(),
            _ => parts.into_iter().filter(|p| p.len > 0).collect(),
        };

        let mut device_results = Vec::with_capacity(active.len());
        for part in &active {
            let value_buf = match self.strategy {
                ReduceStrategy::LocalTree => self.reduce_on_device_tree(
                    &ctx,
                    part.device,
                    &compiled,
                    part.buffer.clone(),
                    part.len,
                )?,
                ReduceStrategy::GlobalNaive => self.reduce_on_device_naive(
                    &ctx,
                    part.device,
                    &compiled,
                    part.buffer.clone(),
                    part.len,
                )?,
            };
            device_results.push((part.device, value_buf));
        }

        // Download the per-device results (tiny transfers) and fold on the
        // host, in device order for determinism.
        let mut acc = self.identity;
        let f = self.user.func();
        for (device, buf) in device_results {
            let mut v = [T::default()];
            ctx.queue(device).enqueue_read(&buf, &mut v)?;
            acc = f(acc, v[0]);
        }
        Ok(Scalar::new(acc, ctx.host_now_s()))
    }

    /// Repeated local-memory tree passes until one value remains.
    fn reduce_on_device_tree(
        &self,
        ctx: &crate::context::Context,
        device: usize,
        compiled: &vgpu::CompiledKernel,
        mut data: Buffer<T>,
        mut n: usize,
    ) -> Result<Buffer<T>> {
        let wg_size = ctx.work_group();
        loop {
            let n_groups = n.div_ceil(wg_size);
            let partials = ctx.device(device).alloc::<T>(n_groups)?;
            let body = self.tree_pass_body(data.clone(), partials.clone(), n, wg_size);
            let kernel = compiled.with_body(body);
            ctx.queue(device)
                .launch(&kernel, NDRange::linear(n_groups * wg_size, wg_size))?;
            if n_groups == 1 {
                return Ok(partials);
            }
            data = partials;
            n = n_groups;
        }
    }

    /// One local-memory tree pass: each group reduces `wg_size` elements
    /// into one partial (sequential addressing — conflict-free).
    fn tree_pass_body(
        &self,
        input: Buffer<T>,
        partials: Buffer<T>,
        n: usize,
        wg_size: usize,
    ) -> KernelBody {
        let f = self.user.func().clone();
        let identity = self.identity;
        let static_ops = self.user.static_ops();
        Arc::new(move |wg: &WorkGroup| {
            let scratch = wg.local_buf::<T>(wg_size);
            // Load phase: guarded global read, identity padding.
            wg.for_each_item(|it| {
                let lid = it.local_id(0);
                let gid = it.global_id(0);
                let v = if gid < n {
                    it.read(&input, gid)
                } else {
                    identity
                };
                scratch.set(lid, v);
            });
            wg.barrier();
            // Tree phase: stride halving, sequential addressing.
            let mut s = wg_size / 2;
            while s > 0 {
                wg.for_each_item(|it| {
                    let lid = it.local_id(0);
                    if lid < s {
                        let (r, dyn_ops) =
                            meter::metered(|| f(scratch.get(lid), scratch.get(lid + s)));
                        scratch.set(lid, r);
                        it.work(static_ops + dyn_ops);
                    }
                });
                // Sequential addressing is conflict-free; record the warp
                // access pattern so the model can prove it.
                record_tree_banks(wg, s, false);
                wg.barrier();
                s /= 2;
            }
            wg.for_each_item(|it| {
                if it.local_id(0) == 0 {
                    it.write(&partials, wg.group_id(0), scratch.get(0));
                }
            });
        })
    }

    /// The ablation baseline: log₂(n) full passes through global memory,
    /// no local memory at all.
    fn reduce_on_device_naive(
        &self,
        ctx: &crate::context::Context,
        device: usize,
        compiled: &vgpu::CompiledKernel,
        mut data: Buffer<T>,
        mut n: usize,
    ) -> Result<Buffer<T>> {
        let f_outer = self.user.func().clone();
        let identity = self.identity;
        let static_ops = self.user.static_ops();
        while n > 1 {
            let half = n.div_ceil(2);
            let next = ctx.device(device).alloc::<T>(half)?;
            let src = data.clone();
            let dst = next.clone();
            let f = f_outer.clone();
            let body: KernelBody = Arc::new(move |wg: &WorkGroup| {
                wg.for_each_item(|it| {
                    if !it.in_bounds() {
                        return;
                    }
                    let i = it.global_id(0);
                    let a = it.read(&src, i);
                    let b = if i + half < n {
                        it.read(&src, i + half)
                    } else {
                        identity
                    };
                    let (r, dyn_ops) = meter::metered(|| f(a, b));
                    it.write(&dst, i, r);
                    it.work(static_ops + dyn_ops);
                });
            });
            let kernel = compiled.with_body(body);
            ctx.queue(device).launch(&kernel, linear_range(ctx, half))?;
            data = next;
            n = half;
        }
        Ok(data)
    }
}

/// Record the local-memory access pattern of one tree level for every warp:
/// lanes `lid < s` read `lid` and `lid + s` (sequential addressing when
/// `interleaved` is false) or `2*s*lid` and `2*s*lid + s` (the classic
/// conflicting interleaved pattern) — the latter is used by the ablation.
pub(crate) fn record_tree_banks(wg: &WorkGroup, s: usize, interleaved: bool) {
    let warp = vgpu::timing::WARP_SIZE;
    let active = s;
    let mut lane = 0usize;
    while lane < active {
        let hi = (lane + warp).min(active);
        if interleaved {
            wg.bank_model().record_access((lane..hi).map(|l| 2 * s * l));
            wg.bank_model()
                .record_access((lane..hi).map(|l| 2 * s * l + s));
        } else {
            wg.bank_model().record_access(lane..hi);
            wg.bank_model().record_access((lane..hi).map(|l| l + s));
        }
        lane = hi;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::skeletons::test_support::ctx;
    use crate::vector::Distribution;

    fn sum_skel() -> Reduce<f32, fn(f32, f32) -> f32> {
        Reduce::new(
            crate::skel_fn!(
                fn sum(x: f32, y: f32) -> f32 {
                    x + y
                }
            ),
            0.0,
        )
    }

    #[test]
    fn reduce_sums_exactly() {
        let c = ctx(1);
        let v = Vector::from_vec(&c, (1..=1000).map(|i| i as f32).collect());
        let s = sum_skel().apply(&v).unwrap();
        assert_eq!(s.get_value(), 500500.0);
    }

    #[test]
    fn reduce_handles_non_power_of_two_lengths() {
        let c = ctx(1);
        for n in [1usize, 2, 63, 64, 65, 127, 1000, 4097] {
            let v = Vector::from_vec(&c, vec![1.0f32; n]);
            let s = sum_skel().apply(&v).unwrap();
            assert_eq!(s.get_value(), n as f32, "n={n}");
        }
    }

    #[test]
    fn reduce_across_block_distributed_devices() {
        let c = ctx(3);
        let v = Vector::from_vec(&c, (1..=100).map(|i| i as f32).collect());
        v.set_distribution(Distribution::Block).unwrap();
        let s = sum_skel().apply(&v).unwrap();
        assert_eq!(s.get_value(), 5050.0);
    }

    #[test]
    fn reduce_on_copy_distribution_uses_one_device() {
        let c = ctx(2);
        let v = Vector::from_vec(&c, vec![2.0f32; 64]);
        v.set_distribution(Distribution::Copy).unwrap();
        let s = sum_skel().apply(&v).unwrap();
        assert_eq!(s.get_value(), 128.0, "copies must not be double counted");
    }

    #[test]
    fn reduce_with_max_operator() {
        let c = ctx(2);
        let max_fn = Reduce::new(
            crate::skel_fn!(
                fn maxf(x: f32, y: f32) -> f32 {
                    if x > y {
                        x
                    } else {
                        y
                    }
                }
            ),
            f32::NEG_INFINITY,
        );
        let mut data: Vec<f32> = (0..500).map(|i| (i as f32 * 37.0) % 101.0).collect();
        data[321] = 1e6;
        let v = Vector::from_vec(&c, data);
        assert_eq!(max_fn.apply(&v).unwrap().get_value(), 1e6);
    }

    #[test]
    fn reduce_empty_vector_errors() {
        let c = ctx(1);
        let v = Vector::from_vec(&c, Vec::<f32>::new());
        assert!(matches!(sum_skel().apply(&v), Err(Error::Empty(_))));
    }

    #[test]
    fn naive_strategy_matches_tree_result_but_costs_more_traffic() {
        let c = ctx(1);
        let data: Vec<f32> = (0..4096).map(|i| (i % 7) as f32).collect();
        let expected: f32 = data.iter().sum();

        let v = Vector::from_vec(&c, data);
        v.ensure_on_devices().unwrap();

        // Warm the program cache so only kernel time is compared.
        sum_skel().apply(&v).unwrap();

        c.platform().reset_clocks();
        let tree = sum_skel().apply(&v).unwrap();
        c.sync();
        let t_tree = c.host_now_s();

        c.platform().reset_clocks();
        let naive = sum_skel()
            .with_strategy(ReduceStrategy::GlobalNaive)
            .apply(&v)
            .unwrap();
        c.sync();
        let t_naive = c.host_now_s();

        assert_eq!(tree.get_value(), expected);
        assert_eq!(naive.get_value(), expected);
        assert!(
            t_naive > t_tree,
            "global-memory reduce must model slower: naive={t_naive} tree={t_tree}"
        );
    }

    #[test]
    fn dot_product_composition() {
        // The paper's Listing 1: C = sum(mult(A, B)).
        let c = ctx(2);
        let mult = crate::skel_fn!(
            fn mult(x: f32, y: f32) -> f32 {
                x * y
            }
        );
        let a = Vector::from_vec(&c, (0..64).map(|i| i as f32).collect());
        let b = Vector::from_vec(&c, (0..64).map(|i| (i % 4) as f32).collect());
        let ab = crate::skeletons::Zip::new(mult).apply(&a, &b).unwrap();
        let s = sum_skel().apply(&ab).unwrap();
        let expected: f32 = (0..64).map(|i| (i * (i % 4)) as f32).sum();
        assert_eq!(s.get_value(), expected);
    }
}
