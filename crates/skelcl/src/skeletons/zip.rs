//! The Zip skeleton (paper eq. (2)):
//! `zip ⊕ [x...], [y...] = [x0 ⊕ y0, ..., xn-1 ⊕ yn-1]`.
//!
//! "Thus, it is a generalized dyadic form of Map. By chaining Zip
//! skeletons, variadic forms of Map can be implemented."
//!
//! If the two inputs are distributed differently, the second is
//! automatically redistributed to match the first — the paper's promise
//! that "data exchange between multiple devices is performed automatically".

use crate::arguments::{Arguments, KernelEnv};
use crate::codegen::{self, UserFn};
use crate::error::{Error, Result};
use crate::matrix::Matrix;
use crate::meter;
use crate::skeletons::{
    alloc_matching_matrix_parts, alloc_matching_parts, linear_range, output_vector, range_2d,
};
use crate::vector::Vector;
use std::marker::PhantomData;
use std::sync::Arc;
use vgpu::{KernelBody, Program, Scalar as Element};

/// The binary element-wise skeleton: `out[i] = f(a[i], b[i])`.
pub struct Zip<T1: Element, T2: Element, U: Element, F> {
    user: UserFn<F>,
    program: Program,
    /// The 2D-NDRange twin used by [`Zip::apply_matrix`].
    program2d: Program,
    _pd: PhantomData<fn(T1, T2) -> U>,
}

impl<T1, T2, U, F> Zip<T1, T2, U, F>
where
    T1: Element,
    T2: Element,
    U: Element,
    F: Fn(T1, T2) -> U + Send + Sync + Clone + 'static,
{
    /// `Zip<float> mult("float mult(float x,float y){return x*y;}")`.
    pub fn new(user: UserFn<F>) -> Self {
        let program = codegen::zip_program(
            user.name(),
            user.source(),
            T1::TYPE_NAME,
            T2::TYPE_NAME,
            U::TYPE_NAME,
            0,
        );
        let program2d = codegen::zip2d_program(
            user.name(),
            user.source(),
            T1::TYPE_NAME,
            T2::TYPE_NAME,
            U::TYPE_NAME,
        );
        Zip {
            user,
            program,
            program2d,
            _pd: PhantomData,
        }
    }

    pub fn program(&self) -> &Program {
        &self.program
    }

    /// Apply the skeleton to two equally sized vectors.
    pub fn apply(&self, lhs: &Vector<T1>, rhs: &Vector<T2>) -> Result<Vector<U>> {
        if lhs.len() != rhs.len() {
            return Err(Error::LengthMismatch {
                left: lhs.len(),
                right: rhs.len(),
            });
        }
        let ctx = lhs.ctx().clone();
        let mut span = ctx.span("zip.apply");
        span.attr("len", lhs.len().to_string());
        span.attr("distribution", format!("{:?}", lhs.distribution()));
        span.attr("devices", ctx.n_devices().to_string());
        let compiled = ctx.get_or_build(&self.program)?;

        // Align distributions: rhs follows lhs (automatic data exchange).
        if rhs.distribution() != lhs.distribution() {
            rhs.set_distribution(lhs.distribution())?;
        }
        let l_parts = lhs.parts()?;
        let r_parts = rhs.parts()?;
        let out_parts = alloc_matching_parts::<T1, U>(&ctx, &l_parts)?;

        let static_ops = self.user.static_ops();
        for ((lp, rp), op) in l_parts.iter().zip(&r_parts).zip(&out_parts) {
            debug_assert_eq!(lp.offset, rp.offset);
            debug_assert_eq!(lp.len, rp.len);
            if lp.len == 0 {
                continue;
            }
            let f = self.user.func().clone();
            let a = lp.buffer.clone();
            let b = rp.buffer.clone();
            let dst = op.buffer.clone();
            let body: KernelBody = Arc::new(move |wg| {
                wg.for_each_item(|it| {
                    if !it.in_bounds() {
                        return;
                    }
                    let i = it.global_id(0);
                    let x = it.read(&a, i);
                    let y = it.read(&b, i);
                    let (r, dyn_ops) = meter::metered(|| f(x, y));
                    it.write(&dst, i, r);
                    it.work(static_ops + dyn_ops);
                });
            });
            let kernel = compiled.with_body(body);
            ctx.queue(lp.device)
                .launch(&kernel, linear_range(&ctx, lp.len))?;
        }
        Ok(output_vector(
            &ctx,
            lhs.len(),
            lhs.distribution(),
            out_parts,
        ))
    }

    /// Apply the skeleton element-wise over two equally shaped matrices,
    /// launching one 2D NDRange per device part. As with vectors, `rhs` is
    /// automatically redistributed to follow `lhs`; halo rows are computed
    /// locally, so halo coherence is preserved without any exchange.
    pub fn apply_matrix(&self, lhs: &Matrix<T1>, rhs: &Matrix<T2>) -> Result<Matrix<U>> {
        if lhs.dims() != rhs.dims() {
            return Err(Error::ShapeMismatch {
                left: lhs.dims(),
                right: rhs.dims(),
            });
        }
        let ctx = lhs.ctx().clone();
        let mut span = ctx.span("zip.apply_matrix");
        span.attr("shape", {
            let (r, c) = lhs.dims();
            format!("{r}x{c}")
        });
        span.attr("distribution", format!("{:?}", lhs.distribution()));
        span.attr("devices", ctx.n_devices().to_string());
        let compiled = ctx.get_or_build(&self.program2d)?;
        if rhs.distribution() != lhs.distribution() {
            rhs.set_distribution(lhs.distribution())?;
        }
        let (rows, cols) = lhs.dims();
        let l_parts = lhs.parts()?;
        let r_parts = rhs.parts()?;
        let halos_fresh = lhs.halos_fresh() && rhs.halos_fresh();
        let out_parts = alloc_matching_matrix_parts::<T1, U>(&ctx, &l_parts)?;

        let static_ops = self.user.static_ops();
        for ((lp, rp), op) in l_parts.iter().zip(&r_parts).zip(&out_parts) {
            debug_assert_eq!(lp.row_offset, rp.row_offset);
            debug_assert_eq!(lp.col_offset, rp.col_offset);
            debug_assert_eq!(lp.span_rows(), rp.span_rows());
            if lp.rows == 0 || lp.cols == 0 {
                continue;
            }
            let f = self.user.func().clone();
            let a = lp.buffer.clone();
            let b = rp.buffer.clone();
            let dst = op.buffer.clone();
            let stride = lp.cols;
            let body: KernelBody = Arc::new(move |wg| {
                wg.for_each_item(|it| {
                    if !it.in_bounds() {
                        return;
                    }
                    let i = it.global_id(1) * stride + it.global_id(0);
                    let x = it.read(&a, i);
                    let y = it.read(&b, i);
                    let (r, dyn_ops) = meter::metered(|| f(x, y));
                    it.write(&dst, i, r);
                    it.work(static_ops + dyn_ops);
                });
            });
            let kernel = compiled.with_body(body);
            ctx.queue(lp.device)
                .launch(&kernel, range_2d(&ctx, lp.cols, lp.span_rows()))?;
        }
        Ok(Matrix::from_device_parts(
            &ctx,
            rows,
            cols,
            lhs.distribution(),
            out_parts,
            halos_fresh,
        ))
    }
}

/// Zip with additional arguments (used by OSEM's reconstruction-image
/// update, whose kernel "resembles the body of the second inner loop").
pub struct ZipArgs<T1: Element, T2: Element, U: Element, F> {
    user: UserFn<F>,
    n_extra: usize,
    _pd: PhantomData<fn(T1, T2) -> U>,
}

impl<T1, T2, U, F> ZipArgs<T1, T2, U, F>
where
    T1: Element,
    T2: Element,
    U: Element,
    F: Fn(T1, T2, &KernelEnv<'_>) -> U + Send + Sync + Clone + 'static,
{
    pub fn new(user: UserFn<F>, n_extra: usize) -> Self {
        ZipArgs {
            user,
            n_extra,
            _pd: PhantomData,
        }
    }

    fn program(&self) -> Program {
        codegen::zip_program(
            self.user.name(),
            self.user.source(),
            T1::TYPE_NAME,
            T2::TYPE_NAME,
            U::TYPE_NAME,
            self.n_extra,
        )
    }

    pub fn apply(&self, lhs: &Vector<T1>, rhs: &Vector<T2>, args: &Arguments) -> Result<Vector<U>> {
        if lhs.len() != rhs.len() {
            return Err(Error::LengthMismatch {
                left: lhs.len(),
                right: rhs.len(),
            });
        }
        let ctx = lhs.ctx().clone();
        let mut span = ctx.span("zip_args.apply");
        span.attr("len", lhs.len().to_string());
        span.attr("distribution", format!("{:?}", lhs.distribution()));
        span.attr("devices", ctx.n_devices().to_string());
        let compiled = ctx.get_or_build(&self.program())?;
        args.ensure_on_devices()?;
        if rhs.distribution() != lhs.distribution() {
            rhs.set_distribution(lhs.distribution())?;
        }
        let l_parts = lhs.parts()?;
        let r_parts = rhs.parts()?;
        let out_parts = alloc_matching_parts::<T1, U>(&ctx, &l_parts)?;

        let static_ops = self.user.static_ops();
        for ((lp, rp), op) in l_parts.iter().zip(&r_parts).zip(&out_parts) {
            if lp.len == 0 {
                continue;
            }
            let resolved = Arc::new(args.resolve(lp.device)?);
            let f = self.user.func().clone();
            let a = lp.buffer.clone();
            let b = rp.buffer.clone();
            let dst = op.buffer.clone();
            let body: KernelBody = Arc::new(move |wg| {
                wg.for_each_item(|it| {
                    if !it.in_bounds() {
                        return;
                    }
                    let i = it.global_id(0);
                    let x = it.read(&a, i);
                    let y = it.read(&b, i);
                    let env = KernelEnv {
                        item: it,
                        args: &resolved,
                    };
                    let (r, dyn_ops) = meter::metered(|| f(x, y, &env));
                    it.write(&dst, i, r);
                    it.work(static_ops + dyn_ops);
                });
            });
            let kernel = compiled.with_body(body);
            ctx.queue(lp.device)
                .launch(&kernel, linear_range(&ctx, lp.len))?;
        }
        Ok(output_vector(
            &ctx,
            lhs.len(),
            lhs.distribution(),
            out_parts,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::skeletons::test_support::ctx;
    use crate::vector::Distribution;

    #[test]
    fn zip_multiplies_elementwise() {
        let c = ctx(1);
        let mult = crate::skel_fn!(
            fn mult(x: f32, y: f32) -> f32 {
                x * y
            }
        );
        let z = Zip::new(mult);
        let a = Vector::from_vec(&c, (0..50).map(|i| i as f32).collect());
        let b = Vector::from_vec(&c, vec![2.0f32; 50]);
        let out = z.apply(&a, &b).unwrap();
        assert_eq!(
            out.to_vec().unwrap(),
            (0..50).map(|i| 2.0 * i as f32).collect::<Vec<_>>()
        );
    }

    #[test]
    fn zip_rejects_length_mismatch() {
        let c = ctx(1);
        let add = crate::skel_fn!(
            fn add(x: f32, y: f32) -> f32 {
                x + y
            }
        );
        let z = Zip::new(add);
        let a = Vector::from_vec(&c, vec![1.0f32; 4]);
        let b = Vector::from_vec(&c, vec![1.0f32; 5]);
        assert!(matches!(
            z.apply(&a, &b),
            Err(Error::LengthMismatch { left: 4, right: 5 })
        ));
    }

    #[test]
    fn zip_mixed_element_types() {
        let c = ctx(1);
        let scale = crate::skel_fn!(
            fn scale(x: i32, s: f32) -> f32 {
                x as f32 * s
            }
        );
        let z = Zip::new(scale);
        let a = Vector::from_vec(&c, vec![1i32, 2, 3]);
        let b = Vector::from_vec(&c, vec![0.5f32, 0.25, 2.0]);
        assert_eq!(
            z.apply(&a, &b).unwrap().to_vec().unwrap(),
            vec![0.5, 0.5, 6.0]
        );
    }

    #[test]
    fn zip_aligns_mismatched_distributions() {
        let c = ctx(2);
        let add = crate::skel_fn!(
            fn add(x: f32, y: f32) -> f32 {
                x + y
            }
        );
        let z = Zip::new(add);
        let a = Vector::from_vec(&c, vec![1.0f32; 32]);
        let b = Vector::from_vec(&c, vec![2.0f32; 32]);
        a.set_distribution(Distribution::Block).unwrap();
        b.set_distribution(Distribution::Single(0)).unwrap();
        b.ensure_on_devices().unwrap();
        let out = z.apply(&a, &b).unwrap();
        assert_eq!(b.distribution(), Distribution::Block, "rhs was realigned");
        assert_eq!(out.to_vec().unwrap(), vec![3.0f32; 32]);
    }

    #[test]
    fn chained_zips_form_variadic_maps() {
        // The paper: "By chaining Zip skeletons, variadic forms of Map can
        // be implemented." Compute a*b + c with two Zips.
        let c = ctx(2);
        let mult = crate::skel_fn!(
            fn mult(x: f32, y: f32) -> f32 {
                x * y
            }
        );
        let add = crate::skel_fn!(
            fn add(x: f32, y: f32) -> f32 {
                x + y
            }
        );
        let a = Vector::from_vec(&c, (0..20).map(|i| i as f32).collect());
        let b = Vector::from_vec(&c, vec![3.0f32; 20]);
        let d = Vector::from_vec(&c, vec![1.0f32; 20]);
        let ab = Zip::new(mult).apply(&a, &b).unwrap();
        let out = Zip::new(add).apply(&ab, &d).unwrap();
        assert_eq!(
            out.to_vec().unwrap(),
            (0..20).map(|i| 3.0 * i as f32 + 1.0).collect::<Vec<_>>()
        );
    }

    #[test]
    fn chained_skeletons_do_not_retransfer() {
        // Lazy copying (Section III-A): "if an output vector is used as the
        // input to another skeleton, no further data transfer is performed."
        let c = ctx(1);
        let mult = crate::skel_fn!(
            fn mult(x: f32, y: f32) -> f32 {
                x * y
            }
        );
        let add = crate::skel_fn!(
            fn add(x: f32, y: f32) -> f32 {
                x + y
            }
        );
        let a = Vector::from_vec(&c, vec![1.0f32; 256]);
        let b = Vector::from_vec(&c, vec![2.0f32; 256]);
        let ab = Zip::new(mult).apply(&a, &b).unwrap();
        let before = c.platform().stats_snapshot();
        let _out = Zip::new(add).apply(&ab, &a).unwrap();
        let delta = c.platform().stats_snapshot() - before;
        assert_eq!(
            delta.h2d_transfers, 0,
            "chaining must not re-upload anything"
        );
    }

    #[test]
    fn zip_on_matrices_matches_host_zip() {
        let c = ctx(3);
        let add = crate::skel_fn!(
            fn add(x: f32, y: f32) -> f32 {
                x + y
            }
        );
        let z = Zip::new(add);
        let xs: Vec<f32> = (0..9 * 5).map(|i| i as f32).collect();
        let ys: Vec<f32> = (0..9 * 5).map(|i| (i * 3) as f32).collect();
        let a = crate::Matrix::from_vec(&c, 9, 5, xs.clone());
        let b = crate::Matrix::from_vec(&c, 9, 5, ys.clone());
        a.set_distribution(crate::MatrixDistribution::RowBlock { halo: 1 })
            .unwrap();
        let out = z.apply_matrix(&a, &b).unwrap();
        assert_eq!(b.distribution(), a.distribution(), "rhs was realigned");
        let want: Vec<f32> = xs.iter().zip(&ys).map(|(x, y)| x + y).collect();
        assert_eq!(out.to_vec().unwrap(), want);
    }

    #[test]
    fn zip_rejects_matrix_shape_mismatch() {
        let c = ctx(1);
        let add = crate::skel_fn!(
            fn add(x: f32, y: f32) -> f32 {
                x + y
            }
        );
        let z = Zip::new(add);
        let a = crate::Matrix::from_vec(&c, 2, 6, vec![0.0f32; 12]);
        let b = crate::Matrix::from_vec(&c, 3, 4, vec![0.0f32; 12]);
        let err = z.apply_matrix(&a, &b).unwrap_err();
        assert!(matches!(err, Error::ShapeMismatch { .. }));
        assert_eq!(err.to_string(), "shape mismatch: 2x6 vs 3x4");
    }

    #[test]
    fn zip_with_args_scales_by_scalar() {
        let c = ctx(1);
        let fma = UserFn::new(
            "fma_s",
            "float fma_s(float x, float y, float s) { return x + y * s; }",
            |x: f32, y: f32, env: &KernelEnv<'_>| x + y * env.scalar::<f32>(0),
        );
        let z = ZipArgs::new(fma, 1);
        let a = Vector::from_vec(&c, vec![1.0f32; 8]);
        let b = Vector::from_vec(&c, vec![2.0f32; 8]);
        let mut args = Arguments::new();
        args.push(10.0f32);
        let out = z.apply(&a, &b, &args).unwrap();
        assert_eq!(out.to_vec().unwrap(), vec![21.0f32; 8]);
    }
}
