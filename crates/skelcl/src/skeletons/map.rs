//! The Map skeleton (paper eq. (1)):
//! `map f [x0, ..., xn-1] = [f(x0), ..., f(xn-1)]`.
//!
//! Three variants share the implementation skeleton:
//! * [`Map`] — the plain unary map of Section III-B,
//! * [`MapArgs`] — map whose customizing function also receives the
//!   [`Arguments`] environment (Section III-C, Listing 2),
//! * [`MapVoid`] — map that "produces no result, but updates [vectors
//!   passed as arguments] by side-effect" (Section IV-B, the OSEM error
//!   image kernel).

use crate::arguments::{Arguments, KernelEnv};
use crate::codegen::{self, UserFn};
use crate::error::Result;
use crate::matrix::Matrix;
use crate::meter;
use crate::skeletons::{
    alloc_matching_matrix_parts, alloc_matching_parts, linear_range, output_vector, range_2d,
};
use crate::vector::Vector;
use std::marker::PhantomData;
use std::sync::Arc;
use vgpu::{KernelBody, Program, Scalar as Element};

/// The unary Map skeleton: `out[i] = f(in[i])`.
pub struct Map<T: Element, U: Element, F> {
    user: UserFn<F>,
    program: Program,
    /// The 2D-NDRange twin used by [`Map::apply_matrix`].
    program2d: Program,
    _pd: PhantomData<fn(T) -> U>,
}

impl<T, U, F> Map<T, U, F>
where
    T: Element,
    U: Element,
    F: Fn(T) -> U + Send + Sync + Clone + 'static,
{
    /// Create the skeleton from its customizing function
    /// (`Map<float> m("float f(float x){...}")` in the paper).
    pub fn new(user: UserFn<F>) -> Self {
        let program =
            codegen::map_program(user.name(), user.source(), T::TYPE_NAME, U::TYPE_NAME, 0);
        let program2d =
            codegen::map2d_program(user.name(), user.source(), T::TYPE_NAME, U::TYPE_NAME);
        Map {
            user,
            program,
            program2d,
            _pd: PhantomData,
        }
    }

    /// The generated OpenCL-C program (exposed for the cache and LoC
    /// experiments).
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// Launch the map kernel over elements `[start, start + len)` of one
    /// part pair — the one body both [`Map::apply`] (full range, legacy
    /// device-serializing launch) and [`Map::apply_streamed`] (one range
    /// per upload chunk, async launch waiting on the chunk's event) bind.
    #[allow(clippy::too_many_arguments)]
    fn launch_range(
        &self,
        ctx: &crate::context::Context,
        compiled: &vgpu::CompiledKernel,
        ip: &crate::vector::DevicePart<T>,
        op: &crate::vector::DevicePart<U>,
        start: usize,
        len: usize,
        dep: Option<vgpu::Event>,
    ) -> Result<()> {
        if len == 0 {
            return Ok(());
        }
        let static_ops = self.user.static_ops();
        let f = self.user.func().clone();
        let src = ip.buffer.clone();
        let dst = op.buffer.clone();
        let body: KernelBody = Arc::new(move |wg| {
            wg.for_each_item(|it| {
                if !it.in_bounds() {
                    return;
                }
                let i = start + it.global_id(0);
                let x = it.read(&src, i);
                let (y, dyn_ops) = meter::metered(|| f(x));
                it.write(&dst, i, y);
                it.work(static_ops + dyn_ops);
            });
        });
        let kernel = compiled.with_body(body);
        let nd = linear_range(ctx, len);
        match dep {
            None => ctx.queue(ip.device).launch(&kernel, nd)?,
            Some(ev) => ctx.queue(ip.device).launch_async(&kernel, nd, &[ev])?,
        };
        Ok(())
    }

    /// Apply the skeleton: uploads the input lazily, launches one kernel
    /// per device part, and returns the output vector with the same
    /// distribution — its data stays on the devices (lazy copying).
    pub fn apply(&self, input: &Vector<T>) -> Result<Vector<U>> {
        let ctx = input.ctx().clone();
        let mut span = ctx.span("map.apply");
        span.attr("len", input.len().to_string());
        span.attr("distribution", format!("{:?}", input.distribution()));
        span.attr("devices", ctx.n_devices().to_string());
        let compiled = ctx.get_or_build(&self.program)?;
        let in_parts = input.parts()?;
        let out_parts = alloc_matching_parts::<T, U>(&ctx, &in_parts)?;
        for (ip, op) in in_parts.iter().zip(&out_parts) {
            self.launch_range(&ctx, &compiled, ip, op, 0, ip.len, None)?;
        }
        Ok(output_vector(
            &ctx,
            input.len(),
            input.distribution(),
            out_parts,
        ))
    }

    /// Like [`Map::apply`], but when the input still lives on the host its
    /// upload is **streamed in `chunk_len`-element chunks on the copy
    /// stream** and the map launches one kernel per chunk, each waiting
    /// only for its own chunk's upload event — the classic
    /// upload/compute-pipelined schedule: chunk `k` computes while chunk
    /// `k+1` is still crossing PCIe. Bit-identical to [`Map::apply`] (same
    /// generated program, same per-element math); on device-fresh input it
    /// degrades to exactly `apply`'s schedule.
    pub fn apply_streamed(&self, input: &Vector<T>, chunk_len: usize) -> Result<Vector<U>> {
        let ctx = input.ctx().clone();
        let mut span = ctx.span("map.apply_streamed");
        span.attr("len", input.len().to_string());
        span.attr("distribution", format!("{:?}", input.distribution()));
        span.attr("devices", ctx.n_devices().to_string());
        span.attr("chunk_len", chunk_len.to_string());
        let compiled = ctx.get_or_build(&self.program)?;
        let (in_parts, upload_chunks) = input.parts_with_upload_chunks(chunk_len.max(1))?;
        let out_parts = alloc_matching_parts::<T, U>(&ctx, &in_parts)?;
        for ((ip, op), chunks) in in_parts.iter().zip(&out_parts).zip(&upload_chunks) {
            if chunks.is_empty() {
                // Already resident, no chunk events: apply's exact launch.
                self.launch_range(&ctx, &compiled, ip, op, 0, ip.len, None)?;
            } else {
                for c in chunks {
                    self.launch_range(
                        &ctx,
                        &compiled,
                        ip,
                        op,
                        c.start,
                        c.len,
                        Some(c.event.clone()),
                    )?;
                }
            }
        }
        Ok(output_vector(
            &ctx,
            input.len(),
            input.distribution(),
            out_parts,
        ))
    }

    /// Apply the skeleton element-wise over a [`Matrix`], launching one 2D
    /// NDRange per device part. Halo rows are computed locally too (they
    /// are just copies of rows owned elsewhere), so the output's halo
    /// coherence matches the input's and no exchange is ever needed for
    /// element-wise chains.
    pub fn apply_matrix(&self, input: &Matrix<T>) -> Result<Matrix<U>> {
        let ctx = input.ctx().clone();
        let mut span = ctx.span("map.apply_matrix");
        span.attr("shape", {
            let (r, c) = input.dims();
            format!("{r}x{c}")
        });
        span.attr("distribution", format!("{:?}", input.distribution()));
        span.attr("devices", ctx.n_devices().to_string());
        let compiled = ctx.get_or_build(&self.program2d)?;
        let (rows, cols) = input.dims();
        let in_parts = input.parts()?;
        let halos_fresh = input.halos_fresh();
        let out_parts = alloc_matching_matrix_parts::<T, U>(&ctx, &in_parts)?;

        let static_ops = self.user.static_ops();
        for (ip, op) in in_parts.iter().zip(&out_parts) {
            if ip.rows == 0 || ip.cols == 0 {
                continue;
            }
            let f = self.user.func().clone();
            let src = ip.buffer.clone();
            let dst = op.buffer.clone();
            // The part's own column count is the buffer's row stride (only
            // equal to the matrix width for full-width parts).
            let stride = ip.cols;
            let body: KernelBody = Arc::new(move |wg| {
                wg.for_each_item(|it| {
                    if !it.in_bounds() {
                        return;
                    }
                    let i = it.global_id(1) * stride + it.global_id(0);
                    let x = it.read(&src, i);
                    let (y, dyn_ops) = meter::metered(|| f(x));
                    it.write(&dst, i, y);
                    it.work(static_ops + dyn_ops);
                });
            });
            let kernel = compiled.with_body(body);
            ctx.queue(ip.device)
                .launch(&kernel, range_2d(&ctx, ip.cols, ip.span_rows()))?;
        }
        Ok(Matrix::from_device_parts(
            &ctx,
            rows,
            cols,
            input.distribution(),
            out_parts,
            halos_fresh,
        ))
    }
}

/// Map with additional arguments: `out[i] = f(in[i], env)` where `env`
/// exposes the `Arguments` slots (Section III-C).
pub struct MapArgs<T: Element, U: Element, F> {
    user: UserFn<F>,
    n_extra: usize,
    _pd: PhantomData<fn(T) -> U>,
}

impl<T, U, F> MapArgs<T, U, F>
where
    T: Element,
    U: Element,
    F: Fn(T, &KernelEnv<'_>) -> U + Send + Sync + Clone + 'static,
{
    /// `n_extra` is the number of additional arguments the function expects
    /// (it shapes the generated kernel signature).
    pub fn new(user: UserFn<F>, n_extra: usize) -> Self {
        MapArgs {
            user,
            n_extra,
            _pd: PhantomData,
        }
    }

    fn program(&self) -> Program {
        codegen::map_program(
            self.user.name(),
            self.user.source(),
            T::TYPE_NAME,
            U::TYPE_NAME,
            self.n_extra,
        )
    }

    /// Apply with the packed extra arguments. Vector arguments are lazily
    /// uploaded per their own distributions before the launch.
    pub fn apply(&self, input: &Vector<T>, args: &Arguments) -> Result<Vector<U>> {
        let ctx = input.ctx().clone();
        let mut span = ctx.span("map_args.apply");
        span.attr("len", input.len().to_string());
        span.attr("distribution", format!("{:?}", input.distribution()));
        span.attr("devices", ctx.n_devices().to_string());
        let compiled = ctx.get_or_build(&self.program())?;
        args.ensure_on_devices()?;
        let in_parts = input.parts()?;
        let out_parts = alloc_matching_parts::<T, U>(&ctx, &in_parts)?;

        let static_ops = self.user.static_ops();
        for (ip, op) in in_parts.iter().zip(&out_parts) {
            if ip.len == 0 {
                continue;
            }
            let resolved = Arc::new(args.resolve(ip.device)?);
            let f = self.user.func().clone();
            let src = ip.buffer.clone();
            let dst = op.buffer.clone();
            let body: KernelBody = Arc::new(move |wg| {
                wg.for_each_item(|it| {
                    if !it.in_bounds() {
                        return;
                    }
                    let i = it.global_id(0);
                    let x = it.read(&src, i);
                    let env = KernelEnv {
                        item: it,
                        args: &resolved,
                    };
                    let (y, dyn_ops) = meter::metered(|| f(x, &env));
                    it.write(&dst, i, y);
                    it.work(static_ops + dyn_ops);
                });
            });
            let kernel = compiled.with_body(body);
            ctx.queue(ip.device)
                .launch(&kernel, linear_range(&ctx, ip.len))?;
        }
        Ok(output_vector(
            &ctx,
            input.len(),
            input.distribution(),
            out_parts,
        ))
    }
}

/// Side-effect-only Map: "The skeleton produces no result, but updates the
/// error image by side-effect" (Section IV-B). Callers must flag mutated
/// vector arguments with [`Vector::mark_devices_modified`] afterwards,
/// mirroring the paper's `c.dataOnDevicesModified()`.
pub struct MapVoid<T: Element, F> {
    user: UserFn<F>,
    n_extra: usize,
    _pd: PhantomData<fn(T)>,
}

impl<T, F> MapVoid<T, F>
where
    T: Element,
    F: Fn(T, &KernelEnv<'_>) + Send + Sync + Clone + 'static,
{
    pub fn new(user: UserFn<F>, n_extra: usize) -> Self {
        MapVoid {
            user,
            n_extra,
            _pd: PhantomData,
        }
    }

    fn program(&self) -> Program {
        // Void maps reuse the map template with the input type as a dummy
        // output (the generated source returns nothing of interest).
        codegen::map_program(
            self.user.name(),
            self.user.source(),
            T::TYPE_NAME,
            "void",
            self.n_extra,
        )
    }

    pub fn apply(&self, input: &Vector<T>, args: &Arguments) -> Result<()> {
        let ctx = input.ctx().clone();
        let mut span = ctx.span("map_void.apply");
        span.attr("len", input.len().to_string());
        span.attr("distribution", format!("{:?}", input.distribution()));
        span.attr("devices", ctx.n_devices().to_string());
        let compiled = ctx.get_or_build(&self.program())?;
        args.ensure_on_devices()?;
        let in_parts = input.parts()?;

        let static_ops = self.user.static_ops();
        for ip in &in_parts {
            if ip.len == 0 {
                continue;
            }
            let resolved = Arc::new(args.resolve(ip.device)?);
            let f = self.user.func().clone();
            let src = ip.buffer.clone();
            let body: KernelBody = Arc::new(move |wg| {
                wg.for_each_item(|it| {
                    if !it.in_bounds() {
                        return;
                    }
                    let i = it.global_id(0);
                    let x = it.read(&src, i);
                    let env = KernelEnv {
                        item: it,
                        args: &resolved,
                    };
                    let ((), dyn_ops) = meter::metered(|| f(x, &env));
                    it.work(static_ops + dyn_ops);
                });
            });
            let kernel = compiled.with_body(body);
            ctx.queue(ip.device)
                .launch(&kernel, linear_range(&ctx, ip.len))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::skeletons::test_support::ctx;
    use crate::vector::Distribution;

    #[test]
    fn map_squares_on_one_device() {
        let c = ctx(1);
        let square = crate::skel_fn!(
            fn square(x: f32) -> f32 {
                x * x
            }
        );
        let m = Map::new(square);
        let v = Vector::from_vec(&c, (0..100).map(|i| i as f32).collect());
        let out = m.apply(&v).unwrap();
        let got = out.to_vec().unwrap();
        for (i, v) in got.iter().enumerate() {
            assert_eq!(*v, (i * i) as f32);
        }
    }

    #[test]
    fn map_output_stays_on_device_until_read() {
        let c = ctx(1);
        let inc = crate::skel_fn!(
            fn inc(x: f32) -> f32 {
                x + 1.0
            }
        );
        let m = Map::new(inc);
        let v = Vector::from_vec(&c, vec![1.0f32; 64]);
        let out = m.apply(&v).unwrap();
        assert!(!out.host_fresh(), "result must reside on the device");
        assert!(out.device_fresh());
        assert_eq!(out.to_vec().unwrap(), vec![2.0f32; 64]);
    }

    #[test]
    fn map_preserves_block_distribution_across_devices() {
        let c = ctx(3);
        let neg = crate::skel_fn!(
            fn neg(x: i32) -> i32 {
                -x
            }
        );
        let m = Map::new(neg);
        let v = Vector::from_vec(&c, (0..100i32).collect());
        v.set_distribution(Distribution::Block).unwrap();
        let out = m.apply(&v).unwrap();
        assert_eq!(out.distribution(), Distribution::Block);
        assert_eq!(
            out.to_vec().unwrap(),
            (0..100i32).map(|x| -x).collect::<Vec<_>>()
        );
    }

    #[test]
    fn map_with_scalar_argument() {
        // Listing 2 of the paper: multiply each element by a number passed
        // as an additional argument.
        let c = ctx(1);
        let mult_num = UserFn::new(
            "mult_num",
            "float mult_num(float input, float number) { return input * number; }",
            |x: f32, env: &KernelEnv<'_>| x * env.scalar::<f32>(0),
        );
        let m = MapArgs::new(mult_num, 1);
        let v = Vector::from_vec(&c, (0..10).map(|i| i as f32).collect());
        let mut args = Arguments::new();
        args.push(5.0f32);
        let out = m.apply(&v, &args).unwrap();
        assert_eq!(
            out.to_vec().unwrap(),
            (0..10).map(|i| 5.0 * i as f32).collect::<Vec<_>>()
        );
    }

    #[test]
    fn map_with_vector_argument_gathers() {
        let c = ctx(1);
        let table = Vector::from_vec(&c, vec![10.0f32, 20.0, 30.0, 40.0]);
        let gather = UserFn::new(
            "gather",
            "float gather(uint i, __global float* t) { return t[i]; }",
            |i: u32, env: &KernelEnv<'_>| env.vec::<f32>(0).get(i as usize),
        );
        let m = MapArgs::new(gather, 1);
        let idx = Vector::from_vec(&c, vec![3u32, 0, 2, 1]);
        let mut args = Arguments::new();
        args.push(&table);
        let out = m.apply(&idx, &args).unwrap();
        assert_eq!(out.to_vec().unwrap(), vec![40.0, 10.0, 30.0, 20.0]);
    }

    #[test]
    fn map_void_updates_argument_by_side_effect() {
        let c = ctx(2);
        let acc = Vector::from_vec(&c, vec![0.0f32; 4]);
        acc.set_distribution(Distribution::Copy).unwrap();
        let scatter = UserFn::new(
            "scatter",
            "void scatter(uint i, __global float* acc) { atomic_add(&acc[i % 4], 1.0f); }",
            |i: u32, env: &KernelEnv<'_>| {
                env.vec::<f32>(0).atomic_add(i as usize % 4, 1.0);
            },
        );
        let m = MapVoid::new(scatter, 1);
        let idx = Vector::from_vec(&c, (0..16u32).collect());
        idx.set_distribution(Distribution::Block).unwrap();
        let mut args = Arguments::new();
        args.push(&acc);
        m.apply(&idx, &args).unwrap();
        acc.mark_devices_modified();
        // Each device's copy saw 8 of the 16 indices -> 2 hits per slot;
        // merging with add gives 4 per slot.
        let add = crate::skel_fn!(
            fn add(x: f32, y: f32) -> f32 {
                x + y
            }
        );
        acc.set_distribution_with(Distribution::Block, &add)
            .unwrap();
        assert_eq!(acc.to_vec().unwrap(), vec![4.0f32; 4]);
    }

    #[test]
    fn map_reports_dynamic_work() {
        // An iteration-heavy function must produce a longer virtual kernel
        // than a trivial one on the same data (divergence-aware model).
        let c = ctx(1);
        let heavy = UserFn::new(
            "heavy",
            "float heavy(float x) { /* 100-iteration loop */ return x; }",
            |x: f32| {
                crate::work(1000);
                x
            },
        );
        let light = crate::skel_fn!(
            fn light(x: f32) -> f32 {
                x
            }
        );
        let v = Vector::from_vec(&c, vec![1.0f32; 1 << 12]);
        let heavy = Map::new(heavy);
        let light = Map::new(light);

        // Warm the program cache so only kernel time is compared.
        heavy.apply(&v).unwrap();
        light.apply(&v).unwrap();

        c.platform().reset_clocks();
        heavy.apply(&v).unwrap();
        c.sync();
        let t_heavy = c.host_now_s();

        c.platform().reset_clocks();
        light.apply(&v).unwrap();
        c.sync();
        let t_light = c.host_now_s();
        assert!(
            t_heavy > t_light * 2.0,
            "dynamic work must dominate: heavy={t_heavy} light={t_light}"
        );
    }

    #[test]
    fn map_on_matrix_matches_host_map() {
        let c = ctx(3);
        let double = crate::skel_fn!(
            fn double(x: f32) -> f32 {
                x * 2.0
            }
        );
        let m = Map::new(double);
        let data: Vec<f32> = (0..11 * 7).map(|i| i as f32).collect();
        let mat = crate::Matrix::from_vec(&c, 11, 7, data.clone());
        mat.set_distribution(crate::MatrixDistribution::RowBlock { halo: 1 })
            .unwrap();
        let out = m.apply_matrix(&mat).unwrap();
        assert_eq!(out.dims(), (11, 7));
        assert_eq!(out.distribution(), mat.distribution());
        let want: Vec<f32> = data.iter().map(|x| x * 2.0).collect();
        assert_eq!(out.to_vec().unwrap(), want);
    }

    #[test]
    fn map_on_matrix_preserves_halo_freshness_without_transfers() {
        let c = ctx(2);
        let inc = crate::skel_fn!(
            fn inc(x: f32) -> f32 {
                x + 1.0
            }
        );
        let m = Map::new(inc);
        let mat = crate::Matrix::from_vec(&c, 8, 4, vec![0.0f32; 32]);
        mat.set_distribution(crate::MatrixDistribution::RowBlock { halo: 2 })
            .unwrap();
        mat.ensure_on_devices().unwrap();
        let before = c.platform().stats_snapshot();
        let out = m.apply_matrix(&mat).unwrap();
        let out2 = m.apply_matrix(&out).unwrap();
        let delta = c.platform().stats_snapshot() - before;
        assert_eq!(
            delta.total_transfers(),
            0,
            "element-wise matrix chains must not move data at all"
        );
        assert!(out2.halos_fresh(), "halo rows were computed in place");
        assert_eq!(out2.to_vec().unwrap(), vec![2.0f32; 32]);
    }

    #[test]
    fn map_on_empty_vector_is_ok() {
        let c = ctx(2);
        let inc = crate::skel_fn!(
            fn inc(x: f32) -> f32 {
                x + 1.0
            }
        );
        let v = Vector::from_vec(&c, Vec::<f32>::new());
        let out = Map::new(inc).apply(&v).unwrap();
        assert_eq!(out.len(), 0);
        assert!(out.to_vec().unwrap().is_empty());
    }

    #[test]
    fn mismarshalled_argument_is_a_typed_error_not_a_device_panic() {
        // The host pushes an f32 scalar but the function body requests a
        // u32: the device-pool panic must surface as the typed
        // `Error::KernelArgMismatch`, carrying the slot diagnostics, rather
        // than unwinding through the executor.
        let c = ctx(1);
        let bad = UserFn::new(
            "badarg",
            "float badarg(float x, uint k) { return x * (float)k; }",
            |x: f32, env: &KernelEnv<'_>| x * env.scalar::<u32>(0) as f32,
        );
        let m = MapArgs::new(bad, 1);
        let v = Vector::from_vec(&c, vec![1.0f32; 8]);
        let mut args = Arguments::new();
        args.push(5.0f32);
        let err = m.apply(&v, &args).unwrap_err();
        assert!(
            matches!(err, crate::Error::KernelArgMismatch(_)),
            "expected KernelArgMismatch, got {err:?}"
        );
        assert!(err.to_string().contains("argument 0"), "{err}");
    }
}
