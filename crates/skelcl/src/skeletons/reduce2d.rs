//! The 2D reduction skeletons: [`ReduceRows`], [`ReduceCols`] and the
//! index-carrying [`ReduceRowsArg`] / [`ReduceColsArg`] —
//! `Matrix<T> → Vector<T>` reductions that keep every intermediate on the
//! devices. All four share one axis-parameterized distribution dispatch
//! ([`dispatch_reduce`]): Single/Copy inputs reduce in place, the
//! axis-aligned block distribution concatenates per-part results with zero
//! transfers, and the split axis chains seeded partials device-to-device.
//!
//! These are the matrix counterparts of the 1D [`crate::Reduce`]: where
//! Reduce folds a whole vector to one scalar, `ReduceRows` folds every
//! matrix row to one element (a length-`rows` vector) and `ReduceCols`
//! folds every column (a length-`cols` vector). They are the missing
//! composition step of the paper's skeleton algebra — AllPairs and
//! Stencil2D produce matrices, and pipelines like 1-NN (per-row argmin of
//! a distance matrix) or gradient histograms (per-row reductions of a
//! Sobel magnitude image) previously had to download the whole matrix to
//! finish on the host.
//!
//! ## Fold order and bitwise reproducibility
//!
//! Every output element is a **left fold in ascending row/column order
//! from the identity** — the same order a sequential host fold uses. The
//! 1D Reduce's local-memory tree cannot give that guarantee for floats
//! (tree shape depends on work-group geometry); the 2D skeletons have a
//! whole row/column of parallelism across work-items already, so each
//! item folds its segment sequentially and the results are bit-identical
//! across 1/2/4 devices and every [`MatrixDistribution`].
//!
//! ## Cross-part combining
//!
//! * Under [`MatrixDistribution::RowBlock`], every row lives wholly inside
//!   one part, so `ReduceRows` is embarrassingly local: each device folds
//!   its owned rows (halo rows are skipped) and the output vector simply
//!   *concatenates* the per-device results — the row partition equals the
//!   output's `Block` distribution, so **zero** device-to-device transfers
//!   happen.
//! * Under [`MatrixDistribution::ColBlock`] (and symmetrically,
//!   `ReduceCols` under `RowBlock`), the reduced dimension is split across
//!   parts. The parts are chained **in ascending column (row) order**:
//!   each device folds its segment seeded with the previous device's
//!   per-row (per-column) partials, which travel device-to-device — one
//!   vector-sized copy per boundary, never through the host. Seeding the
//!   running fold (rather than combining independent partials) is what
//!   preserves the exact sequential fold order, and with it bitwise
//!   identity across device counts.
//! * `Single`/`Copy` inputs reduce on the (first) device holding the data.

use crate::codegen::{self, UserFn};
use crate::context::Context;
use crate::error::{Error, Result};
use crate::matrix::{Matrix, MatrixDistribution, MatrixPart};
use crate::meter;
use crate::skeletons::linear_range;
use crate::vector::{DevicePart, Distribution, Vector};
use std::marker::PhantomData;
use std::sync::Arc;
use vgpu::{Buffer, CompiledKernel, KernelBody, Program, Scalar as Element};

/// A (best value, best index) buffer pair — the running state the chained
/// argbest launches carry across parts.
type ArgPair<T> = (Buffer<T>, Buffer<u32>);

/// Move the previous segment's partials to `device` if they live elsewhere
/// (the one device-to-device hop per chained part boundary).
fn stage_on<T: Element>(
    ctx: &Context,
    acc: (usize, Buffer<T>),
    device: usize,
    len: usize,
) -> Result<Buffer<T>> {
    let (home, buf) = acc;
    if home == device {
        return Ok(buf);
    }
    let staged = ctx.device(device).alloc::<T>(len)?;
    ctx.platform().copy_d2d_range(&buf, 0, &staged, 0, len, 1)?;
    Ok(staged)
}

/// Which output axis a 2D reduction produces: one element per matrix row
/// (the column dimension folds away) or one per column (rows fold away).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Axis {
    Rows,
    Cols,
}

impl Axis {
    /// Is `dist` the distribution that keeps this reduction's *reduced*
    /// dimension intact inside every part, so per-part results simply
    /// concatenate into the output's `Block` layout with zero transfers?
    fn concatenates_under(self, dist: MatrixDistribution) -> bool {
        matches!(
            (self, dist),
            (Axis::Rows, MatrixDistribution::RowBlock { .. })
                | (Axis::Cols, MatrixDistribution::ColBlock)
        )
    }

    /// Output elements a part contributes under the concat layout.
    fn part_items<T: Element>(self, p: &MatrixPart<T>) -> usize {
        match self {
            Axis::Rows => p.rows,
            Axis::Cols => p.cols,
        }
    }

    /// The part's offset in the concatenated output vector.
    fn part_offset<T: Element>(self, p: &MatrixPart<T>) -> usize {
        match self {
            Axis::Rows => p.row_offset,
            Axis::Cols => p.col_offset,
        }
    }

    /// The part's extent along the *reduced* dimension — zero-extent parts
    /// contribute nothing to a chained fold and are skipped.
    fn reduced_extent<T: Element>(self, p: &MatrixPart<T>) -> usize {
        match self {
            Axis::Rows => p.cols,
            Axis::Cols => p.rows,
        }
    }
}

/// The running device-resident state a chained reduction carries across
/// part boundaries: a partials buffer for the value folds, a (value,
/// index) pair for the argbest skeletons.
trait ChainState: Sized {
    fn stage(self, ctx: &Context, from: usize, to: usize, len: usize) -> Result<Self>;
}

impl<T: Element> ChainState for Buffer<T> {
    fn stage(self, ctx: &Context, from: usize, to: usize, len: usize) -> Result<Self> {
        stage_on(ctx, (from, self), to, len)
    }
}

impl<T: Element> ChainState for ArgPair<T> {
    fn stage(self, ctx: &Context, from: usize, to: usize, len: usize) -> Result<Self> {
        let (v, i) = self;
        Ok((
            stage_on(ctx, (from, v), to, len)?,
            stage_on(ctx, (from, i), to, len)?,
        ))
    }
}

/// Where a dispatched reduction's output landed.
enum Reduced<S> {
    /// One state per part, placed at `offset` (length `len`) of the output:
    /// the part layout *is* the output's `Block` distribution.
    Concat(Vec<(usize, usize, usize, S)>),
    /// The whole output on one device (`Single`/`Copy` inputs and chained
    /// folds).
    Single(usize, S),
}

/// The Single/Copy-vs-concat-vs-chain distribution dispatch shared by all
/// four 2D reduction skeletons (previously copied into each `apply` body):
///
/// * `Single`/`Copy` inputs reduce on the (first) device holding the data;
/// * under the distribution that keeps the reduced dimension intact
///   ([`Axis::concatenates_under`]) every part folds its own output slice
///   locally and the results concatenate — zero inter-device transfers;
/// * otherwise the parts are chained in ascending row/column order, each
///   launch seeded with the previous part's staged partials (one
///   device-to-device hop per boundary, never through the host) — the
///   seeding is what preserves the exact sequential fold order, and with
///   it bitwise identity across device counts.
///
/// `launch(part, n_items, seed)` runs one kernel over a part and returns
/// its output state.
fn dispatch_reduce<T, S, L>(
    input: &Matrix<T>,
    axis: Axis,
    out_len: usize,
    mut launch: L,
) -> Result<Reduced<S>>
where
    T: Element,
    S: ChainState,
    L: FnMut(&MatrixPart<T>, usize, Option<S>) -> Result<S>,
{
    let ctx = input.ctx().clone();
    let parts = input.parts()?;
    match input.distribution() {
        MatrixDistribution::Single(_) | MatrixDistribution::Copy => {
            let p = &parts[0];
            let s = launch(p, out_len, None)?;
            Ok(Reduced::Single(p.device, s))
        }
        dist if axis.concatenates_under(dist) => {
            let mut out = Vec::with_capacity(parts.len());
            for p in &parts {
                let s = launch(p, axis.part_items(p), None)?;
                out.push((p.device, axis.part_offset(p), axis.part_items(p), s));
            }
            Ok(Reduced::Concat(out))
        }
        _ => {
            let mut acc: Option<(usize, S)> = None;
            for p in parts.iter().filter(|p| axis.reduced_extent(p) > 0) {
                let seed = match acc.take() {
                    Some((home, s)) => Some(s.stage(&ctx, home, p.device, out_len)?),
                    None => None,
                };
                let s = launch(p, out_len, seed)?;
                acc = Some((p.device, s));
            }
            let (device, s) =
                acc.expect("a non-empty matrix has a part with non-zero reduced extent");
            Ok(Reduced::Single(device, s))
        }
    }
}

/// Wrap a dispatched value reduction as the output vector.
fn reduced_to_vector<T: Element>(
    ctx: &Context,
    out_len: usize,
    reduced: Reduced<Buffer<T>>,
) -> Vector<T> {
    match reduced {
        Reduced::Single(device, buffer) => {
            Vector::from_single_device_part(ctx, device, out_len, buffer)
        }
        Reduced::Concat(items) => Vector::from_device_parts(
            ctx,
            out_len,
            Distribution::Block,
            items
                .into_iter()
                .map(|(device, offset, len, buffer)| DevicePart {
                    device,
                    offset,
                    len,
                    buffer,
                })
                .collect(),
        ),
    }
}

/// Wrap a dispatched argbest reduction as its (values, indices) vectors.
fn reduced_to_arg_vectors<T: Element>(
    ctx: &Context,
    out_len: usize,
    reduced: Reduced<ArgPair<T>>,
) -> (Vector<T>, Vector<u32>) {
    match reduced {
        Reduced::Single(device, (val, idx)) => (
            Vector::from_single_device_part(ctx, device, out_len, val),
            Vector::from_single_device_part(ctx, device, out_len, idx),
        ),
        Reduced::Concat(items) => {
            let mut val_parts = Vec::with_capacity(items.len());
            let mut idx_parts = Vec::with_capacity(items.len());
            for (device, offset, len, (val, idx)) in items {
                val_parts.push(DevicePart {
                    device,
                    offset,
                    len,
                    buffer: val,
                });
                idx_parts.push(DevicePart {
                    device,
                    offset,
                    len,
                    buffer: idx,
                });
            }
            (
                Vector::from_device_parts(ctx, out_len, Distribution::Block, val_parts),
                Vector::from_device_parts(ctx, out_len, Distribution::Block, idx_parts),
            )
        }
    }
}

/// Launch one segmented-fold kernel on `device`: `n_items` work-items each
/// fold `seg_len` elements of `src` (item `i` reads
/// `base + i*item_pitch + k*elem_pitch` for ascending `k`), starting from
/// `seed[i]` when chaining or from `identity` on the first segment.
/// `ReduceRows` uses `(item_pitch, elem_pitch) = (stride, 1)`;
/// `ReduceCols` uses `(1, stride)` — the column-strided read pattern.
#[allow(clippy::too_many_arguments)]
fn launch_fold<T, F>(
    ctx: &Context,
    compiled: &CompiledKernel,
    device: usize,
    src: &Buffer<T>,
    base: usize,
    n_items: usize,
    seg_len: usize,
    item_pitch: usize,
    elem_pitch: usize,
    seed: Option<Buffer<T>>,
    identity: T,
    user: &UserFn<F>,
) -> Result<Buffer<T>>
where
    T: Element,
    F: Fn(T, T) -> T + Send + Sync + Clone + 'static,
{
    let out = ctx.device(device).alloc::<T>(n_items)?;
    if n_items == 0 || seg_len == 0 {
        return Ok(out);
    }
    // Kernel-body snapshots of the operands: the fold loop runs seg_len
    // times per item, so per-access counted reads would dominate wall
    // time; traffic and work are charged in bulk per item instead (the
    // AllPairs accounting scheme).
    let snap: Arc<Vec<T>> = Arc::new(src.to_vec());
    let seed_snap: Option<Arc<Vec<T>>> = seed.map(|b| Arc::new(b.to_vec()));
    let f = user.func().clone();
    let static_ops = user.static_ops();
    let dst = out.clone();
    let elem_bytes = std::mem::size_of::<T>();
    let seeded = seed_snap.is_some();
    let body: KernelBody = Arc::new(move |wg| {
        wg.for_each_item(|it| {
            if !it.in_bounds() {
                return;
            }
            let i = it.global_id(0);
            let (acc, dyn_ops) = meter::metered(|| {
                let mut acc = match &seed_snap {
                    Some(s) => s[i],
                    None => identity,
                };
                for k in 0..seg_len {
                    acc = f(acc, snap[base + i * item_pitch + k * elem_pitch]);
                }
                acc
            });
            it.write(&dst, i, acc);
            it.work(seg_len as u64 * static_ops + dyn_ops);
            it.traffic_read((seg_len + usize::from(seeded)) * elem_bytes);
        });
    });
    ctx.queue(device)
        .launch(&compiled.with_body(body), linear_range(ctx, n_items))?;
    Ok(out)
}

/// The ReduceRows skeleton: `out[r] = f(...f(f(id, m[r][0]), m[r][1])...)`
/// — one output element per matrix row, folded in ascending column order.
pub struct ReduceRows<T: Element, F> {
    user: UserFn<F>,
    identity: T,
    program: Program,
    _pd: PhantomData<fn(T, T) -> T>,
}

impl<T, F> ReduceRows<T, F>
where
    T: Element,
    F: Fn(T, T) -> T + Send + Sync + Clone + 'static,
{
    /// `ReduceRows<float> sums(sum, 0.0)` — an associative operator plus
    /// its identity, like the 1D Reduce.
    pub fn new(user: UserFn<F>, identity: T) -> Self {
        let program = codegen::reduce_rows_program(user.name(), user.source(), T::TYPE_NAME);
        ReduceRows {
            user,
            identity,
            program,
            _pd: PhantomData,
        }
    }

    /// The generated OpenCL-C program (exposed for the cache experiments).
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// Apply the skeleton. The result is a device-resident length-`rows`
    /// vector: `Block`-distributed (concatenating the per-part results with
    /// zero transfers) for a `RowBlock` input, `Single` on the last chained
    /// device for `ColBlock`, `Single` on the holding device otherwise.
    /// Zero-extent edges fold to the identity: a 0-column matrix reduces to
    /// `identity` per row, a 0-row matrix to the empty vector.
    pub fn apply(&self, input: &Matrix<T>) -> Result<Vector<T>> {
        let ctx = input.ctx().clone();
        let (rows, cols) = input.dims();
        let mut span = ctx.span("reduce_rows.apply");
        span.attr("shape", format!("{rows}x{cols}"));
        span.attr("distribution", format!("{:?}", input.distribution()));
        span.attr("devices", ctx.n_devices().to_string());
        if rows == 0 {
            return Ok(Vector::from_vec(&ctx, Vec::new()));
        }
        if cols == 0 {
            return Ok(Vector::from_vec(&ctx, vec![self.identity; rows]));
        }
        let compiled = ctx.get_or_build(&self.program)?;
        let reduced = dispatch_reduce(input, Axis::Rows, rows, |p, n_items, seed| {
            launch_fold(
                &ctx,
                &compiled,
                p.device,
                &p.buffer,
                p.owned_base(),
                n_items,
                p.cols,
                p.cols,
                1,
                seed,
                self.identity,
                &self.user,
            )
        })?;
        Ok(reduced_to_vector(&ctx, rows, reduced))
    }
}

/// The ReduceCols skeleton: `out[c] = f(...f(f(id, m[0][c]), m[1][c])...)`
/// — one output element per matrix column, folded in ascending row order
/// with column-strided reads.
pub struct ReduceCols<T: Element, F> {
    user: UserFn<F>,
    identity: T,
    program: Program,
    _pd: PhantomData<fn(T, T) -> T>,
}

impl<T, F> ReduceCols<T, F>
where
    T: Element,
    F: Fn(T, T) -> T + Send + Sync + Clone + 'static,
{
    pub fn new(user: UserFn<F>, identity: T) -> Self {
        let program = codegen::reduce_cols_program(user.name(), user.source(), T::TYPE_NAME);
        ReduceCols {
            user,
            identity,
            program,
            _pd: PhantomData,
        }
    }

    /// The generated OpenCL-C program (exposed for the cache experiments).
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// Apply the skeleton. `Block`-distributed output (zero transfers) for
    /// a `ColBlock` input — the column partition equals the output layout —
    /// `Single` on the last chained device for `RowBlock`, `Single` on the
    /// holding device otherwise. Zero-extent edges fold to the identity.
    pub fn apply(&self, input: &Matrix<T>) -> Result<Vector<T>> {
        let ctx = input.ctx().clone();
        let (rows, cols) = input.dims();
        let mut span = ctx.span("reduce_cols.apply");
        span.attr("shape", format!("{rows}x{cols}"));
        span.attr("distribution", format!("{:?}", input.distribution()));
        span.attr("devices", ctx.n_devices().to_string());
        if cols == 0 {
            return Ok(Vector::from_vec(&ctx, Vec::new()));
        }
        if rows == 0 {
            return Ok(Vector::from_vec(&ctx, vec![self.identity; cols]));
        }
        let compiled = ctx.get_or_build(&self.program)?;
        // Only a part's owned rows are folded (halo rows are other parts'
        // data): the base skips them and the segment is `p.rows` long.
        let reduced = dispatch_reduce(input, Axis::Cols, cols, |p, n_items, seed| {
            launch_fold(
                &ctx,
                &compiled,
                p.device,
                &p.buffer,
                p.owned_base(),
                n_items,
                p.rows,
                1,
                p.cols,
                seed,
                self.identity,
                &self.user,
            )
        })?;
        Ok(reduced_to_vector(&ctx, cols, reduced))
    }
}

/// The index-carrying row reduction: per row, the best value **and its
/// column index** under a strict "is `x` better than the incumbent?"
/// comparison, scanned in ascending column order — so the **lowest index
/// wins ties** (only a strict improvement replaces the incumbent). With
/// `better = <` this is the per-row argmin behind the 1-NN pipeline; with
/// `better = >` a per-row argmax (e.g. the strongest gradient per image
/// row).
pub struct ReduceRowsArg<T: Element, F> {
    user: UserFn<F>,
    program: Program,
    _pd: PhantomData<fn(T, T) -> bool>,
}

impl<T, F> ReduceRowsArg<T, F>
where
    T: Element,
    F: Fn(T, T) -> bool + Send + Sync + Clone + 'static,
{
    /// `ReduceRowsArg<float> argmin(less)` where `less(x, best)` returns
    /// whether `x` is *strictly* better.
    pub fn new(user: UserFn<F>) -> Self {
        let program = codegen::reduce_rows_arg_program(user.name(), user.source(), T::TYPE_NAME);
        ReduceRowsArg {
            user,
            program,
            _pd: PhantomData,
        }
    }

    /// The generated OpenCL-C program (exposed for the cache experiments).
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// One argbest launch over a part's row segment; `seed` carries the
    /// running (value, index) pairs across chained column parts.
    #[allow(clippy::too_many_arguments)]
    fn launch_argbest(
        &self,
        ctx: &Context,
        compiled: &CompiledKernel,
        p: &MatrixPart<T>,
        base: usize,
        n_rows: usize,
        seed: Option<(Buffer<T>, Buffer<u32>)>,
    ) -> Result<(Buffer<T>, Buffer<u32>)> {
        let out_val = ctx.device(p.device).alloc::<T>(n_rows)?;
        let out_idx = ctx.device(p.device).alloc::<u32>(n_rows)?;
        if n_rows == 0 || p.cols == 0 {
            return Ok((out_val, out_idx));
        }
        let snap: Arc<Vec<T>> = Arc::new(p.buffer.to_vec());
        let seeds = seed.map(|(v, i)| (Arc::new(v.to_vec()), Arc::new(i.to_vec())));
        let better = self.user.func().clone();
        let static_ops = self.user.static_ops();
        let (dval, didx) = (out_val.clone(), out_idx.clone());
        let stride = p.cols;
        let seg_len = p.cols;
        let col_offset = p.col_offset;
        let elem_bytes = std::mem::size_of::<T>();
        let seeded = seeds.is_some();
        let body: KernelBody = Arc::new(move |wg| {
            wg.for_each_item(|it| {
                if !it.in_bounds() {
                    return;
                }
                let i = it.global_id(0);
                let ((best, best_i), dyn_ops) = meter::metered(|| {
                    let (mut best, mut best_i) = match &seeds {
                        Some((sv, si)) => (sv[i], si[i]),
                        None => (snap[base + i * stride], col_offset as u32),
                    };
                    let start = usize::from(!seeded);
                    for c in start..seg_len {
                        let x = snap[base + i * stride + c];
                        if better(x, best) {
                            best = x;
                            best_i = (col_offset + c) as u32;
                        }
                    }
                    (best, best_i)
                });
                it.write(&dval, i, best);
                it.write(&didx, i, best_i);
                it.work(seg_len as u64 * static_ops + dyn_ops);
                it.traffic_read((seg_len + 2 * usize::from(seeded)) * elem_bytes);
            });
        });
        ctx.queue(p.device)
            .launch(&compiled.with_body(body), linear_range(ctx, n_rows))?;
        Ok((out_val, out_idx))
    }

    /// Apply the skeleton: per-row best value + column index, both as
    /// device-resident vectors distributed like [`ReduceRows::apply`]'s
    /// output. A 0-column matrix has no best element and errors.
    pub fn apply(&self, input: &Matrix<T>) -> Result<(Vector<T>, Vector<u32>)> {
        let ctx = input.ctx().clone();
        let (rows, cols) = input.dims();
        let mut span = ctx.span("reduce_rows_arg.apply");
        span.attr("shape", format!("{rows}x{cols}"));
        span.attr("distribution", format!("{:?}", input.distribution()));
        span.attr("devices", ctx.n_devices().to_string());
        if cols == 0 {
            return Err(Error::Empty("reduce_rows_arg"));
        }
        if rows == 0 {
            return Ok((
                Vector::from_vec(&ctx, Vec::new()),
                Vector::from_vec(&ctx, Vec::new()),
            ));
        }
        let compiled = ctx.get_or_build(&self.program)?;
        let reduced = dispatch_reduce(input, Axis::Rows, rows, |p, n_items, seed| {
            self.launch_argbest(&ctx, &compiled, p, p.owned_base(), n_items, seed)
        })?;
        Ok(reduced_to_arg_vectors(&ctx, rows, reduced))
    }
}

/// The index-carrying column reduction: per column, the best value **and
/// its row index** under the same strict "is `x` better?" comparison as
/// [`ReduceRowsArg`], scanned in ascending row order — lowest row index
/// wins ties. With `better = <` a per-column argmin (e.g. the closest
/// reference point per feature column); with `better = >` a per-column
/// argmax (the strongest gradient per image column). Completes the argmin
/// family the ROADMAP called for: both matrix axes now reduce to
/// device-resident (value, index) pairs.
pub struct ReduceColsArg<T: Element, F> {
    user: UserFn<F>,
    program: Program,
    _pd: PhantomData<fn(T, T) -> bool>,
}

impl<T, F> ReduceColsArg<T, F>
where
    T: Element,
    F: Fn(T, T) -> bool + Send + Sync + Clone + 'static,
{
    /// `ReduceColsArg<float> argmin(less)` where `less(x, best)` returns
    /// whether `x` is *strictly* better.
    pub fn new(user: UserFn<F>) -> Self {
        let program = codegen::reduce_cols_arg_program(user.name(), user.source(), T::TYPE_NAME);
        ReduceColsArg {
            user,
            program,
            _pd: PhantomData,
        }
    }

    /// The generated OpenCL-C program (exposed for the cache experiments).
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// One argbest launch over a part's owned rows; `seed` carries the
    /// running (value, row index) pairs across chained row parts.
    fn launch_argbest(
        &self,
        ctx: &Context,
        compiled: &CompiledKernel,
        p: &MatrixPart<T>,
        n_cols: usize,
        seed: Option<ArgPair<T>>,
    ) -> Result<ArgPair<T>> {
        let out_val = ctx.device(p.device).alloc::<T>(n_cols)?;
        let out_idx = ctx.device(p.device).alloc::<u32>(n_cols)?;
        if n_cols == 0 || p.rows == 0 {
            return Ok((out_val, out_idx));
        }
        let snap: Arc<Vec<T>> = Arc::new(p.buffer.to_vec());
        let seeds = seed.map(|(v, i)| (Arc::new(v.to_vec()), Arc::new(i.to_vec())));
        let better = self.user.func().clone();
        let static_ops = self.user.static_ops();
        let (dval, didx) = (out_val.clone(), out_idx.clone());
        let base = p.owned_base();
        let stride = p.cols;
        let seg_len = p.rows;
        let row_offset = p.row_offset;
        let elem_bytes = std::mem::size_of::<T>();
        let seeded = seeds.is_some();
        let body: KernelBody = Arc::new(move |wg| {
            wg.for_each_item(|it| {
                if !it.in_bounds() {
                    return;
                }
                let i = it.global_id(0);
                let ((best, best_i), dyn_ops) = meter::metered(|| {
                    let (mut best, mut best_i) = match &seeds {
                        Some((sv, si)) => (sv[i], si[i]),
                        None => (snap[base + i], row_offset as u32),
                    };
                    let start = usize::from(!seeded);
                    for r in start..seg_len {
                        let x = snap[base + r * stride + i];
                        if better(x, best) {
                            best = x;
                            best_i = (row_offset + r) as u32;
                        }
                    }
                    (best, best_i)
                });
                it.write(&dval, i, best);
                it.write(&didx, i, best_i);
                it.work(seg_len as u64 * static_ops + dyn_ops);
                it.traffic_read((seg_len + 2 * usize::from(seeded)) * elem_bytes);
            });
        });
        ctx.queue(p.device)
            .launch(&compiled.with_body(body), linear_range(ctx, n_cols))?;
        Ok((out_val, out_idx))
    }

    /// Apply the skeleton: per-column best value + row index, both as
    /// device-resident vectors distributed like [`ReduceCols::apply`]'s
    /// output. A 0-row matrix has no best element and errors.
    pub fn apply(&self, input: &Matrix<T>) -> Result<(Vector<T>, Vector<u32>)> {
        let ctx = input.ctx().clone();
        let (rows, cols) = input.dims();
        let mut span = ctx.span("reduce_cols_arg.apply");
        span.attr("shape", format!("{rows}x{cols}"));
        span.attr("distribution", format!("{:?}", input.distribution()));
        span.attr("devices", ctx.n_devices().to_string());
        if rows == 0 {
            return Err(Error::Empty("reduce_cols_arg"));
        }
        if cols == 0 {
            return Ok((
                Vector::from_vec(&ctx, Vec::new()),
                Vector::from_vec(&ctx, Vec::new()),
            ));
        }
        let compiled = ctx.get_or_build(&self.program)?;
        let reduced = dispatch_reduce(input, Axis::Cols, cols, |p, n_items, seed| {
            self.launch_argbest(&ctx, &compiled, p, n_items, seed)
        })?;
        Ok(reduced_to_arg_vectors(&ctx, cols, reduced))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::skeletons::test_support::ctx;

    fn sum_rows() -> ReduceRows<f32, fn(f32, f32) -> f32> {
        ReduceRows::new(
            crate::skel_fn!(
                fn sum(x: f32, y: f32) -> f32 {
                    x + y
                }
            ),
            0.0,
        )
    }

    fn sum_cols() -> ReduceCols<f32, fn(f32, f32) -> f32> {
        ReduceCols::new(
            crate::skel_fn!(
                fn sum(x: f32, y: f32) -> f32 {
                    x + y
                }
            ),
            0.0,
        )
    }

    fn argmin_rows() -> ReduceRowsArg<f32, fn(f32, f32) -> bool> {
        ReduceRowsArg::new(crate::skel_fn!(
            fn less(x: f32, y: f32) -> bool {
                x < y
            }
        ))
    }

    fn argmin_cols() -> ReduceColsArg<f32, fn(f32, f32) -> bool> {
        ReduceColsArg::new(crate::skel_fn!(
            fn less(x: f32, y: f32) -> bool {
                x < y
            }
        ))
    }

    /// Awkward float values that expose any fold-order deviation bitwise.
    fn messy(rows: usize, cols: usize, salt: u32) -> Vec<f32> {
        (0..rows * cols)
            .map(|i| {
                let h = (i as u32).wrapping_mul(2654435761).wrapping_add(salt);
                ((h % 2000) as f32) / 7.0 - 140.0
            })
            .collect()
    }

    fn host_row_folds(data: &[f32], rows: usize, cols: usize) -> Vec<f32> {
        (0..rows)
            .map(|r| {
                data[r * cols..(r + 1) * cols]
                    .iter()
                    .fold(0.0, |a, &x| a + x)
            })
            .collect()
    }

    fn host_col_folds(data: &[f32], rows: usize, cols: usize) -> Vec<f32> {
        (0..cols)
            .map(|c| (0..rows).fold(0.0, |a, r| a + data[r * cols + c]))
            .collect()
    }

    fn host_row_argmin(data: &[f32], rows: usize, cols: usize) -> (Vec<f32>, Vec<u32>) {
        let mut vals = Vec::with_capacity(rows);
        let mut idxs = Vec::with_capacity(rows);
        for r in 0..rows {
            let row = &data[r * cols..(r + 1) * cols];
            let mut best = 0usize;
            for (c, &x) in row.iter().enumerate() {
                if x < row[best] {
                    best = c;
                }
            }
            vals.push(row[best]);
            idxs.push(best as u32);
        }
        (vals, idxs)
    }

    fn host_col_argmin(data: &[f32], rows: usize, cols: usize) -> (Vec<f32>, Vec<u32>) {
        let mut vals = Vec::with_capacity(cols);
        let mut idxs = Vec::with_capacity(cols);
        for c in 0..cols {
            let mut best = 0usize;
            for r in 0..rows {
                if data[r * cols + c] < data[best * cols + c] {
                    best = r;
                }
            }
            vals.push(data[best * cols + c]);
            idxs.push(best as u32);
        }
        (vals, idxs)
    }

    fn bits(v: &[f32]) -> Vec<u32> {
        v.iter().map(|x| x.to_bits()).collect()
    }

    fn all_dists() -> Vec<MatrixDistribution> {
        vec![
            MatrixDistribution::Single(0),
            MatrixDistribution::Copy,
            MatrixDistribution::RowBlock { halo: 0 },
            MatrixDistribution::RowBlock { halo: 2 },
            MatrixDistribution::ColBlock,
        ]
    }

    #[test]
    fn reduce_rows_matches_host_fold_bitwise_everywhere() {
        let (rows, cols) = (13, 9);
        let data = messy(rows, cols, 1);
        let want = bits(&host_row_folds(&data, rows, cols));
        for devices in [1usize, 2, 4] {
            for dist in all_dists() {
                let c = ctx(devices);
                let m = Matrix::from_vec(&c, rows, cols, data.clone());
                m.set_distribution(dist).unwrap();
                let got = sum_rows().apply(&m).unwrap().to_vec().unwrap();
                assert_eq!(bits(&got), want, "{devices} devices, {dist:?}");
            }
        }
    }

    #[test]
    fn reduce_cols_matches_host_fold_bitwise_everywhere() {
        let (rows, cols) = (11, 7);
        let data = messy(rows, cols, 2);
        let want = bits(&host_col_folds(&data, rows, cols));
        for devices in [1usize, 2, 4] {
            for dist in all_dists() {
                let c = ctx(devices);
                let m = Matrix::from_vec(&c, rows, cols, data.clone());
                m.set_distribution(dist).unwrap();
                let got = sum_cols().apply(&m).unwrap().to_vec().unwrap();
                assert_eq!(bits(&got), want, "{devices} devices, {dist:?}");
            }
        }
    }

    #[test]
    fn row_block_reduce_rows_moves_nothing_between_devices() {
        let c = ctx(4);
        let (rows, cols) = (16, 6);
        let m = Matrix::from_vec(&c, rows, cols, messy(rows, cols, 3));
        m.set_distribution(MatrixDistribution::RowBlock { halo: 1 })
            .unwrap();
        m.ensure_on_devices().unwrap();
        let before = c.platform().stats_snapshot();
        let out = sum_rows().apply(&m).unwrap();
        let delta = c.platform().stats_snapshot() - before;
        assert_eq!(delta.d2d_transfers, 0, "concat combine needs no copies");
        assert_eq!(delta.d2h_transfers, 0, "result stays on the devices");
        assert_eq!(delta.h2d_transfers, 0, "input was already resident");
        assert_eq!(out.distribution(), Distribution::Block);
        assert!(!out.host_fresh(), "output is device-resident");
    }

    #[test]
    fn col_block_reduce_cols_moves_nothing_between_devices() {
        let c = ctx(3);
        let (rows, cols) = (9, 14);
        let m = Matrix::from_vec(&c, rows, cols, messy(rows, cols, 4));
        m.set_distribution(MatrixDistribution::ColBlock).unwrap();
        m.ensure_on_devices().unwrap();
        let before = c.platform().stats_snapshot();
        let out = sum_cols().apply(&m).unwrap();
        let delta = c.platform().stats_snapshot() - before;
        assert_eq!(delta.d2d_transfers, 0, "concat combine needs no copies");
        assert_eq!(out.distribution(), Distribution::Block);
    }

    #[test]
    fn chained_combines_cross_devices_but_never_the_host() {
        let c = ctx(4);
        let (rows, cols) = (10, 12);
        let m = Matrix::from_vec(&c, rows, cols, messy(rows, cols, 5));
        m.set_distribution(MatrixDistribution::ColBlock).unwrap();
        m.ensure_on_devices().unwrap();
        let before = c.platform().stats_snapshot();
        let out = sum_rows().apply(&m).unwrap();
        let delta = c.platform().stats_snapshot() - before;
        assert!(delta.d2d_transfers > 0, "partials hop between devices");
        assert_eq!(delta.d2h_transfers, 0, "never through the host");
        assert_eq!(delta.h2d_transfers, 0, "never through the host");
        assert_eq!(
            bits(&out.to_vec().unwrap()),
            bits(&host_row_folds(&messy(rows, cols, 5), rows, cols))
        );
    }

    #[test]
    fn argmin_matches_host_scan_with_lowest_index_ties() {
        // Values from a tiny set force plenty of ties.
        let (rows, cols) = (12, 15);
        let data: Vec<f32> = (0..rows * cols).map(|i| ((i * 7) % 4) as f32).collect();
        let (want_v, want_i) = host_row_argmin(&data, rows, cols);
        for devices in [1usize, 2, 4] {
            for dist in all_dists() {
                let c = ctx(devices);
                let m = Matrix::from_vec(&c, rows, cols, data.clone());
                m.set_distribution(dist).unwrap();
                let (v, i) = argmin_rows().apply(&m).unwrap();
                assert_eq!(
                    bits(&v.to_vec().unwrap()),
                    bits(&want_v),
                    "{devices} {dist:?}"
                );
                assert_eq!(i.to_vec().unwrap(), want_i, "{devices} {dist:?}");
            }
        }
    }

    #[test]
    fn col_argmin_matches_host_scan_with_lowest_index_ties() {
        // Values from a tiny set force plenty of ties.
        let (rows, cols) = (15, 12);
        let data: Vec<f32> = (0..rows * cols).map(|i| ((i * 11) % 4) as f32).collect();
        let (want_v, want_i) = host_col_argmin(&data, rows, cols);
        for devices in [1usize, 2, 4] {
            for dist in all_dists() {
                let c = ctx(devices);
                let m = Matrix::from_vec(&c, rows, cols, data.clone());
                m.set_distribution(dist).unwrap();
                let (v, i) = argmin_cols().apply(&m).unwrap();
                assert_eq!(
                    bits(&v.to_vec().unwrap()),
                    bits(&want_v),
                    "{devices} {dist:?}"
                );
                assert_eq!(i.to_vec().unwrap(), want_i, "{devices} {dist:?}");
            }
        }
    }

    #[test]
    fn col_block_col_argmin_moves_nothing_between_devices() {
        let c = ctx(3);
        let (rows, cols) = (10, 13);
        let m = Matrix::from_vec(&c, rows, cols, messy(rows, cols, 9));
        m.set_distribution(MatrixDistribution::ColBlock).unwrap();
        m.ensure_on_devices().unwrap();
        let before = c.platform().stats_snapshot();
        let (v, i) = argmin_cols().apply(&m).unwrap();
        let delta = c.platform().stats_snapshot() - before;
        assert_eq!(delta.d2d_transfers, 0, "concat combine needs no copies");
        assert_eq!(v.distribution(), Distribution::Block);
        assert_eq!(i.distribution(), Distribution::Block);
    }

    #[test]
    fn degenerate_shapes_reduce_correctly() {
        // 1×N, N×1 and fewer rows/cols than devices, all distributions.
        for (rows, cols) in [(1usize, 9usize), (9, 1), (2, 3), (3, 2), (1, 1)] {
            let data = messy(rows, cols, 6);
            let want_r = bits(&host_row_folds(&data, rows, cols));
            let want_c = bits(&host_col_folds(&data, rows, cols));
            for devices in [1usize, 4] {
                for dist in all_dists() {
                    let c = ctx(devices);
                    let m = Matrix::from_vec(&c, rows, cols, data.clone());
                    m.set_distribution(dist).unwrap();
                    let r = sum_rows().apply(&m).unwrap().to_vec().unwrap();
                    let cc = sum_cols().apply(&m).unwrap().to_vec().unwrap();
                    assert_eq!(bits(&r), want_r, "rows {rows}x{cols} {devices} {dist:?}");
                    assert_eq!(bits(&cc), want_c, "cols {rows}x{cols} {devices} {dist:?}");
                }
            }
        }
    }

    #[test]
    fn zero_extent_edges_fold_to_the_identity() {
        let c = ctx(2);
        let none = Matrix::from_vec(&c, 0, 5, Vec::<f32>::new());
        assert!(sum_rows()
            .apply(&none)
            .unwrap()
            .to_vec()
            .unwrap()
            .is_empty());
        assert_eq!(
            sum_cols().apply(&none).unwrap().to_vec().unwrap(),
            vec![0.0f32; 5]
        );
        let hollow = Matrix::from_vec(&c, 4, 0, Vec::<f32>::new());
        assert_eq!(
            sum_rows().apply(&hollow).unwrap().to_vec().unwrap(),
            vec![0.0f32; 4]
        );
        assert!(sum_cols()
            .apply(&hollow)
            .unwrap()
            .to_vec()
            .unwrap()
            .is_empty());
        assert!(matches!(
            argmin_rows().apply(&hollow),
            Err(Error::Empty("reduce_rows_arg"))
        ));
        assert!(matches!(
            argmin_cols().apply(&none),
            Err(Error::Empty("reduce_cols_arg"))
        ));
        let (v, i) = argmin_cols().apply(&hollow).unwrap();
        assert!(v.to_vec().unwrap().is_empty());
        assert!(i.to_vec().unwrap().is_empty());
    }

    #[test]
    fn reduce2d_programs_have_distinct_cache_keys() {
        let r = sum_rows();
        let c = sum_cols();
        let a = argmin_rows();
        let ca = argmin_cols();
        assert_ne!(r.program().hash(), c.program().hash());
        assert_ne!(r.program().hash(), a.program().hash());
        assert_ne!(c.program().hash(), a.program().hash());
        assert_ne!(ca.program().hash(), a.program().hash());
        assert_ne!(ca.program().hash(), c.program().hash());
    }

    #[test]
    fn second_apply_reuses_the_cached_kernel() {
        let c = ctx(2);
        let m = Matrix::from_vec(&c, 8, 8, messy(8, 8, 7));
        let skel = sum_rows();
        skel.apply(&m).unwrap();
        let built = c.programs_built();
        skel.apply(&m).unwrap();
        assert_eq!(c.programs_built(), built, "no rebuild on a second run");
    }

    #[test]
    fn max_operator_reduces_rows_too() {
        let c = ctx(3);
        let (rows, cols) = (6, 50);
        let mut data = messy(rows, cols, 8);
        data[2 * cols + 17] = 1e7;
        let m = Matrix::from_vec(&c, rows, cols, data.clone());
        m.set_distribution(MatrixDistribution::RowBlock { halo: 0 })
            .unwrap();
        let maxr = ReduceRows::new(
            crate::skel_fn!(
                fn maxf(x: f32, y: f32) -> f32 {
                    if x > y {
                        x
                    } else {
                        y
                    }
                }
            ),
            f32::NEG_INFINITY,
        );
        let got = maxr.apply(&m).unwrap().to_vec().unwrap();
        assert_eq!(got[2], 1e7);
        for r in 0..rows {
            let want = data[r * cols..(r + 1) * cols]
                .iter()
                .fold(f32::NEG_INFINITY, |a, &x| if x > a { x } else { a });
            assert_eq!(got[r], want, "row {r}");
        }
    }
}
