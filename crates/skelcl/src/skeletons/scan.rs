//! The Scan skeleton (paper eq. (4)): exclusive prefix combination
//! `scan ⊕ [x0, ..., xn-1] = [id, x0, x0⊕x1, ..., x0⊕...⊕xn-2]`.
//!
//! "The implementation of Scan provided in SkelCL is a modified version of
//! [Harris et al., GPU Gems 3 ch. 39]. It is highly optimized and makes
//! heavy use of local memory, as well as it tries to avoid memory bank
//! conflicts." — We implement exactly that: the work-efficient Blelloch
//! up-sweep/down-sweep in local memory over tiles of `2 × work_group`
//! elements, with `CONFLICT_FREE_OFFSET` index padding; multi-tile inputs
//! scan their tile sums recursively and add the offsets back; multi-device
//! (Block) inputs propagate per-device carries.
//!
//! The un-padded variant is kept for the bank-conflict ablation (E9).

use crate::codegen::{self, UserFn};
use crate::error::Result;
use crate::meter;
use crate::vector::{Distribution, Vector};
use std::marker::PhantomData;
use std::sync::Arc;
use vgpu::local::{conflict_free_index, padded_local_len};
use vgpu::timing::WARP_SIZE;
use vgpu::{Buffer, CompiledKernel, KernelBody, NDRange, Program, Scalar as Element, WorkGroup};

/// Bank-conflict handling for the local-memory tree phases.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ScanStrategy {
    /// Padded indices (`CONFLICT_FREE_OFFSET`), the paper's optimized form.
    #[default]
    BankAware,
    /// Raw power-of-two strides — serialises on the banks (ablation only).
    Conflicting,
}

/// The Scan skeleton, customized by an associative operator and identity.
pub struct Scan<T: Element, F> {
    user: UserFn<F>,
    identity: T,
    strategy: ScanStrategy,
    program: Program,
    _pd: PhantomData<fn(T, T) -> T>,
}

impl<T, F> Scan<T, F>
where
    T: Element,
    F: Fn(T, T) -> T + Send + Sync + Clone + 'static,
{
    pub fn new(user: UserFn<F>, identity: T) -> Self {
        let program = codegen::scan_program(user.name(), user.source(), T::TYPE_NAME);
        Scan {
            user,
            identity,
            strategy: ScanStrategy::BankAware,
            program,
            _pd: PhantomData,
        }
    }

    pub fn with_strategy(mut self, strategy: ScanStrategy) -> Self {
        self.strategy = strategy;
        self
    }

    pub fn program(&self) -> &Program {
        &self.program
    }

    /// Exclusive scan; output has the input's length and distribution.
    pub fn apply(&self, input: &Vector<T>) -> Result<Vector<T>> {
        Ok(self.apply_with_total(input)?.0)
    }

    /// Exclusive scan plus the combination of *all* elements (the value an
    /// inclusive scan would end with) — stream compaction and radix sort
    /// need it to size their outputs.
    pub fn apply_with_total(&self, input: &Vector<T>) -> Result<(Vector<T>, T)> {
        let ctx = input.ctx().clone();
        let mut span = ctx.span("scan.apply");
        span.attr("len", input.len().to_string());
        span.attr("distribution", format!("{:?}", input.distribution()));
        span.attr("devices", ctx.n_devices().to_string());
        let compiled = ctx.get_or_build(&self.program)?;
        let parts = input.parts()?;

        let mut out_parts = Vec::with_capacity(parts.len());
        let mut totals = Vec::with_capacity(parts.len());
        for p in &parts {
            if p.len == 0 {
                out_parts.push(crate::vector::DevicePart {
                    device: p.device,
                    offset: p.offset,
                    len: 0,
                    buffer: ctx.device(p.device).alloc::<T>(0)?,
                });
                totals.push(self.identity);
                continue;
            }
            let (buf, total) =
                self.scan_device(&ctx, p.device, &compiled, p.buffer.clone(), p.len)?;
            out_parts.push(crate::vector::DevicePart {
                device: p.device,
                offset: p.offset,
                len: p.len,
                buffer: buf,
            });
            totals.push(total);
        }

        // Multi-part (Block): propagate carries — part d must be offset by
        // the combination of all earlier parts' totals.
        let f = self.user.func();
        if input.distribution() == Distribution::Block && out_parts.len() > 1 {
            let mut carry = self.identity;
            for (i, p) in out_parts.iter().enumerate() {
                if i > 0 && p.len > 0 {
                    self.add_carry(&ctx, p.device, &compiled, &p.buffer, carry)?;
                }
                carry = f(carry, totals[i]);
            }
            let grand_total = carry;
            return Ok((
                crate::vector::Vector::from_device_parts(
                    &ctx,
                    input.len(),
                    input.distribution(),
                    out_parts,
                ),
                grand_total,
            ));
        }

        // Single / Copy: every active part already holds the full scan.
        let grand_total = totals.first().copied().unwrap_or(self.identity);
        Ok((
            crate::vector::Vector::from_device_parts(
                &ctx,
                input.len(),
                input.distribution(),
                out_parts,
            ),
            grand_total,
        ))
    }

    /// Scan a contiguous device buffer; returns `(exclusive_scan, total)`.
    fn scan_device(
        &self,
        ctx: &crate::context::Context,
        device: usize,
        compiled: &CompiledKernel,
        input: Buffer<T>,
        len: usize,
    ) -> Result<(Buffer<T>, T)> {
        let lsize = work_group_pow2(ctx.work_group());
        let epg = 2 * lsize; // elements per group (each lane loads two)
        let n_groups = len.div_ceil(epg);

        let out = ctx.device(device).alloc::<T>(len)?;
        let block_sums = ctx.device(device).alloc::<T>(n_groups)?;

        let body = self.scan_block_body(input, out.clone(), block_sums.clone(), len, lsize);
        let kernel = compiled.with_body(body);
        ctx.queue(device)
            .launch(&kernel, NDRange::linear(n_groups * lsize, lsize))?;

        if n_groups == 1 {
            let mut total = [T::default()];
            ctx.queue(device).enqueue_read(&block_sums, &mut total)?;
            return Ok((out, total[0]));
        }

        // Recursively scan the per-group sums, then add them back.
        let (scanned_sums, total) =
            self.scan_device(ctx, device, compiled, block_sums, n_groups)?;
        self.add_offsets(ctx, device, compiled, &out, &scanned_sums, len, epg)?;
        Ok((out, total))
    }

    /// The per-tile Blelloch kernel body.
    fn scan_block_body(
        &self,
        input: Buffer<T>,
        out: Buffer<T>,
        block_sums: Buffer<T>,
        n: usize,
        lsize: usize,
    ) -> KernelBody {
        let f = self.user.func().clone();
        let identity = self.identity;
        let static_ops = self.user.static_ops();
        let bank_aware = self.strategy == ScanStrategy::BankAware;
        Arc::new(move |wg: &WorkGroup| {
            let banks = wg.bank_model().n_banks();
            let cfi = |i: usize| {
                if bank_aware {
                    conflict_free_index(i, banks)
                } else {
                    i
                }
            };
            let temp_len = if bank_aware {
                padded_local_len(2 * lsize, banks)
            } else {
                2 * lsize
            };
            let temp = wg.local_buf::<T>(temp_len);
            let base = wg.group_id(0) * 2 * lsize;

            // Load two elements per lane, identity-padded at the tail.
            wg.for_each_item(|it| {
                let lid = it.local_id(0);
                for idx in [lid, lid + lsize] {
                    let v = if base + idx < n {
                        it.read(&input, base + idx)
                    } else {
                        identity
                    };
                    temp.set(cfi(idx), v);
                }
            });

            // Up-sweep (reduce) phase.
            let mut offset = 1usize;
            let mut d = lsize;
            while d > 0 {
                wg.barrier();
                wg.for_each_item(|it| {
                    let lid = it.local_id(0);
                    if lid < d {
                        let i = offset * (2 * lid + 1) - 1;
                        let j = offset * (2 * lid + 2) - 1;
                        let (r, dyn_ops) = meter::metered(|| f(temp.get(cfi(i)), temp.get(cfi(j))));
                        temp.set(cfi(j), r);
                        it.work(static_ops + dyn_ops);
                    }
                });
                record_scan_banks(wg, d, offset, bank_aware);
                offset <<= 1;
                d >>= 1;
            }

            // Save the tile total and clear the last element.
            wg.for_each_item(|it| {
                if it.local_id(0) == 0 {
                    let last = cfi(2 * lsize - 1);
                    it.write(&block_sums, wg.group_id(0), temp.get(last));
                    temp.set(last, identity);
                }
            });

            // Down-sweep phase.
            let mut d = 1usize;
            while d <= lsize {
                offset >>= 1;
                wg.barrier();
                wg.for_each_item(|it| {
                    let lid = it.local_id(0);
                    if lid < d {
                        let i = offset * (2 * lid + 1) - 1;
                        let j = offset * (2 * lid + 2) - 1;
                        let t = temp.get(cfi(i));
                        temp.set(cfi(i), temp.get(cfi(j)));
                        let (r, dyn_ops) = meter::metered(|| f(t, temp.get(cfi(j))));
                        temp.set(cfi(j), r);
                        it.work(static_ops + dyn_ops);
                    }
                });
                record_scan_banks(wg, d, offset, bank_aware);
                d <<= 1;
            }
            wg.barrier();

            // Store the scanned tile.
            wg.for_each_item(|it| {
                let lid = it.local_id(0);
                for idx in [lid, lid + lsize] {
                    if base + idx < n {
                        it.write(&out, base + idx, temp.get(cfi(idx)));
                    }
                }
            });
        })
    }

    /// `data[i] = f(offsets[i / epg], data[i])` — adds the scanned tile
    /// sums back onto each tile.
    #[allow(clippy::too_many_arguments)]
    fn add_offsets(
        &self,
        ctx: &crate::context::Context,
        device: usize,
        compiled: &CompiledKernel,
        data: &Buffer<T>,
        offsets: &Buffer<T>,
        len: usize,
        epg: usize,
    ) -> Result<()> {
        let f = self.user.func().clone();
        let static_ops = self.user.static_ops();
        let data = data.clone();
        let offsets = offsets.clone();
        let body: KernelBody = Arc::new(move |wg: &WorkGroup| {
            wg.for_each_item(|it| {
                if !it.in_bounds() {
                    return;
                }
                let i = it.global_id(0);
                let off = it.read(&offsets, i / epg);
                let v = it.read(&data, i);
                let (r, dyn_ops) = meter::metered(|| f(off, v));
                it.write(&data, i, r);
                it.work(static_ops + dyn_ops);
            });
        });
        let kernel = compiled.with_body(body);
        let wg_size = ctx.work_group().min(len);
        ctx.queue(device)
            .launch(&kernel, NDRange::linear(len, wg_size))?;
        Ok(())
    }

    /// `data[i] = f(carry, data[i])` — multi-device carry propagation.
    fn add_carry(
        &self,
        ctx: &crate::context::Context,
        device: usize,
        compiled: &CompiledKernel,
        data: &Buffer<T>,
        carry: T,
    ) -> Result<()> {
        let f = self.user.func().clone();
        let static_ops = self.user.static_ops();
        let data = data.clone();
        let len = data.len();
        let body: KernelBody = Arc::new(move |wg: &WorkGroup| {
            wg.for_each_item(|it| {
                if !it.in_bounds() {
                    return;
                }
                let i = it.global_id(0);
                let v = it.read(&data, i);
                let (r, dyn_ops) = meter::metered(|| f(carry, v));
                it.write(&data, i, r);
                it.work(static_ops + dyn_ops);
            });
        });
        let kernel = compiled.with_body(body);
        let wg_size = ctx.work_group().min(len);
        ctx.queue(device)
            .launch(&kernel, NDRange::linear(len, wg_size))?;
        Ok(())
    }
}

/// Largest power of two ≤ `wg` (Blelloch needs power-of-two groups).
fn work_group_pow2(wg: usize) -> usize {
    let mut p = 1usize;
    while p * 2 <= wg {
        p *= 2;
    }
    p
}

/// Record one tree level's local-memory traffic for the bank model: lanes
/// `lid < d` touch `offset*(2*lid+1)-1` and `offset*(2*lid+2)-1`, through
/// the padding map when `bank_aware`.
fn record_scan_banks(wg: &WorkGroup, d: usize, offset: usize, bank_aware: bool) {
    let banks = wg.bank_model().n_banks();
    let map = |i: usize| {
        if bank_aware {
            conflict_free_index(i, banks)
        } else {
            i
        }
    };
    let mut lane = 0usize;
    while lane < d {
        let hi = (lane + WARP_SIZE).min(d);
        wg.bank_model()
            .record_access((lane..hi).map(|l| map(offset * (2 * l + 1) - 1)));
        wg.bank_model()
            .record_access((lane..hi).map(|l| map(offset * (2 * l + 2) - 1)));
        lane = hi;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::skeletons::test_support::ctx;

    fn sum_scan() -> Scan<f32, fn(f32, f32) -> f32> {
        Scan::new(
            crate::skel_fn!(
                fn sum(x: f32, y: f32) -> f32 {
                    x + y
                }
            ),
            0.0,
        )
    }

    fn expected_exclusive(data: &[f32]) -> Vec<f32> {
        let mut out = Vec::with_capacity(data.len());
        let mut acc = 0.0f32;
        for &x in data {
            out.push(acc);
            acc += x;
        }
        out
    }

    #[test]
    fn scan_matches_paper_definition() {
        // Paper eq. (4): [id, x0, x0+x1, ..., x0+...+xn-2].
        let c = ctx(1);
        let data = vec![3.0f32, 1.0, 7.0, 0.0, 4.0, 1.0, 6.0, 3.0];
        let v = Vector::from_vec(&c, data.clone());
        let out = sum_scan().apply(&v).unwrap();
        assert_eq!(out.to_vec().unwrap(), expected_exclusive(&data));
    }

    #[test]
    fn scan_single_tile_and_multi_tile_sizes() {
        let c = ctx(1); // work_group 64 -> tile 128
        for n in [1usize, 2, 127, 128, 129, 1000, 4096, 5000] {
            let data: Vec<f32> = (0..n).map(|i| ((i * 13) % 5) as f32).collect();
            let v = Vector::from_vec(&c, data.clone());
            let (out, total) = sum_scan().apply_with_total(&v).unwrap();
            assert_eq!(out.to_vec().unwrap(), expected_exclusive(&data), "n={n}");
            assert_eq!(total, data.iter().sum::<f32>(), "n={n}");
        }
    }

    #[test]
    fn scan_across_block_distributed_devices() {
        let c = ctx(3);
        let data: Vec<f32> = (0..1000).map(|i| ((i * 7) % 11) as f32).collect();
        let v = Vector::from_vec(&c, data.clone());
        v.set_distribution(crate::vector::Distribution::Block)
            .unwrap();
        let (out, total) = sum_scan().apply_with_total(&v).unwrap();
        assert_eq!(out.to_vec().unwrap(), expected_exclusive(&data));
        assert_eq!(total, data.iter().sum::<f32>());
    }

    #[test]
    fn scan_with_non_commutative_operator() {
        // String-like concatenation is out of scope for Scalars, so use a
        // 2x2 matrix product encoded in u64... simpler: max-plus algebra,
        // associative but not invertible.
        let c = ctx(2);
        let maxplus = Scan::new(
            crate::skel_fn!(
                fn mp(x: i64, y: i64) -> i64 {
                    if x > y {
                        x
                    } else {
                        y
                    }
                }
            ),
            i64::MIN,
        );
        let data: Vec<i64> = vec![5, 1, 9, 3, 9, 2, 11, 0, 4];
        let v = Vector::from_vec(&c, data.clone());
        v.set_distribution(crate::vector::Distribution::Block)
            .unwrap();
        let out = maxplus.apply(&v).unwrap().to_vec().unwrap();
        let mut acc = i64::MIN;
        let mut want = Vec::new();
        for &x in &data {
            want.push(acc);
            acc = acc.max(x);
        }
        assert_eq!(out, want);
    }

    #[test]
    fn bank_aware_strategy_avoids_conflicts() {
        let c = ctx(1);
        let data: Vec<f32> = (0..4096).map(|i| (i % 3) as f32).collect();
        let v = Vector::from_vec(&c, data.clone());
        v.ensure_on_devices().unwrap();

        // Warm the program cache so only kernel time is compared.
        sum_scan().apply(&v).unwrap();

        c.platform().reset_clocks();
        let aware = sum_scan().apply(&v).unwrap();
        c.sync();
        let t_aware = c.host_now_s();

        c.platform().reset_clocks();
        let naive = sum_scan()
            .with_strategy(ScanStrategy::Conflicting)
            .apply(&v)
            .unwrap();
        c.sync();
        let t_naive = c.host_now_s();

        assert_eq!(aware.to_vec().unwrap(), naive.to_vec().unwrap());
        assert!(
            t_naive > t_aware,
            "bank conflicts must cost virtual time: naive={t_naive} aware={t_aware}"
        );
    }

    #[test]
    fn work_group_pow2_rounds_down() {
        assert_eq!(work_group_pow2(256), 256);
        assert_eq!(work_group_pow2(200), 128);
        assert_eq!(work_group_pow2(1), 1);
    }

    #[test]
    fn scan_then_map_stays_on_device() {
        let c = ctx(1);
        let v = Vector::from_vec(&c, vec![1.0f32; 512]);
        let scanned = sum_scan().apply(&v).unwrap();
        let before = c.platform().stats_snapshot();
        let inc = crate::skel_fn!(
            fn inc(x: f32) -> f32 {
                x + 1.0
            }
        );
        let _ = crate::skeletons::Map::new(inc).apply(&scanned).unwrap();
        let delta = c.platform().stats_snapshot() - before;
        assert_eq!(delta.h2d_transfers, 0);
    }
}
