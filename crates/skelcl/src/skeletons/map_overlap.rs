//! The MapOverlap skeleton: a 1-D stencil with halo exchange.
//!
//! The paper's conclusion lists extending the skeleton set as future work;
//! MapOverlap is the extension SkelCL shipped next (Steuwer et al., later
//! publications). Each output element is computed from its input element
//! and a neighbourhood of `radius` elements on each side. Under a Block
//! distribution the halos cross device boundaries, so applying the skeleton
//! triggers automatic device-to-device halo exchange — a compact showcase
//! of the distribution machinery.

use crate::codegen::{self, UserFn};
use crate::error::Result;
use crate::meter;
use crate::skeletons::{alloc_matching_parts, linear_range, output_vector};
use crate::vector::{DevicePart, Vector};
use std::marker::PhantomData;
use std::sync::Arc;
use vgpu::{Buffer, Item, KernelBody, Program, Scalar as Element};

/// What out-of-range neighbourhood positions read.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Boundary<T> {
    /// Replicate the edge element.
    Clamp,
    /// A constant value.
    Neutral(T),
}

/// The customizing function's view of one stencil application: counted
/// access to the neighbourhood `[-radius, +radius]`.
pub struct StencilView<'a, T: Element> {
    ext: &'a Buffer<T>,
    /// Index of the centre element inside the halo-extended buffer.
    centre: usize,
    radius: usize,
    item: &'a Item<'a>,
}

impl<'a, T: Element> StencilView<'a, T> {
    /// The neighbour at `offset` (0 = the element itself). Panics if
    /// `|offset| > radius`, mirroring SkelCL's out-of-range checks.
    #[inline]
    pub fn get(&self, offset: isize) -> T {
        assert!(
            offset.unsigned_abs() <= self.radius,
            "stencil access {offset} exceeds radius {}",
            self.radius
        );
        let idx = (self.centre as isize + offset) as usize;
        self.item.read(self.ext, idx)
    }

    pub fn radius(&self) -> usize {
        self.radius
    }
}

/// The MapOverlap skeleton.
pub struct MapOverlap<T: Element, F> {
    user: UserFn<F>,
    radius: usize,
    boundary: Boundary<T>,
    program: Program,
    _pd: PhantomData<fn(T) -> T>,
}

impl<T, F> MapOverlap<T, F>
where
    T: Element,
    F: Fn(&StencilView<'_, T>) -> T + Send + Sync + Clone + 'static,
{
    pub fn new(user: UserFn<F>, radius: usize, boundary: Boundary<T>) -> Self {
        let program =
            codegen::map_overlap_program(user.name(), user.source(), T::TYPE_NAME, radius);
        MapOverlap {
            user,
            radius,
            boundary,
            program,
            _pd: PhantomData,
        }
    }

    pub fn program(&self) -> &Program {
        &self.program
    }

    pub fn apply(&self, input: &Vector<T>) -> Result<Vector<T>> {
        let ctx = input.ctx().clone();
        let mut span = ctx.span("map_overlap.apply");
        span.attr("len", input.len().to_string());
        span.attr("distribution", format!("{:?}", input.distribution()));
        span.attr("devices", ctx.n_devices().to_string());
        span.attr("radius", self.radius.to_string());
        let compiled = ctx.get_or_build(&self.program)?;
        let parts = input.parts()?;
        let out_parts = alloc_matching_parts::<T, T>(&ctx, &parts)?;
        let n_global = input.len();
        let r = self.radius;

        for (ip, op) in parts.iter().zip(&out_parts) {
            if ip.len == 0 {
                continue;
            }
            // Build the halo-extended input on this device.
            let ext = ctx.device(ip.device).alloc::<T>(ip.len + 2 * r)?;
            ctx.platform()
                .copy_on_device(&ip.buffer, 0, &ext, r, ip.len)?;
            self.fill_halo(&ctx, &parts, ip, &ext, n_global)?;

            let f = self.user.func().clone();
            let static_ops = self.user.static_ops();
            let radius = r;
            let dst = op.buffer.clone();
            let ext_body = ext.clone();
            let body: KernelBody = Arc::new(move |wg| {
                wg.for_each_item(|it| {
                    if !it.in_bounds() {
                        return;
                    }
                    let i = it.global_id(0);
                    let view = StencilView {
                        ext: &ext_body,
                        centre: i + radius,
                        radius,
                        item: it,
                    };
                    let (y, dyn_ops) = meter::metered(|| f(&view));
                    it.write(&dst, i, y);
                    it.work(static_ops + dyn_ops);
                });
            });
            let kernel = compiled.with_body(body);
            ctx.queue(ip.device)
                .launch(&kernel, linear_range(&ctx, ip.len))?;
        }
        Ok(output_vector(
            &ctx,
            n_global,
            input.distribution(),
            out_parts,
        ))
    }

    /// Fill `[0, r)` and `[r + len, len + 2r)` of the extended buffer from
    /// neighbouring parts (device-to-device) or the boundary rule.
    fn fill_halo(
        &self,
        ctx: &crate::context::Context,
        parts: &[DevicePart<T>],
        ip: &DevicePart<T>,
        ext: &Buffer<T>,
        n_global: usize,
    ) -> Result<()> {
        let r = self.radius;
        // Halo global index ranges: left = [off - r, off), right =
        // [off + len, off + len + r). Gather element-by-element runs from
        // whichever part holds them.
        let fills = [
            (ip.offset as isize - r as isize, 0usize), // (global start, ext start)
            ((ip.offset + ip.len) as isize, r + ip.len),
        ];
        for (gstart, ext_start) in fills {
            let mut k = 0usize;
            while k < r {
                let g = gstart + k as isize;
                let ext_idx = ext_start + k;
                if g < 0 || g as usize >= n_global {
                    // Outside the vector: boundary rule.
                    match self.boundary {
                        Boundary::Neutral(v) => ext.set(ext_idx, v),
                        Boundary::Clamp => {
                            let clamped = if g < 0 { 0usize } else { n_global - 1 };
                            let src = part_holding(parts, clamped);
                            ctx.platform().copy_d2d_range(
                                &src.buffer,
                                clamped - src.offset,
                                ext,
                                ext_idx,
                                1,
                                1,
                            )?;
                        }
                    }
                    k += 1;
                    continue;
                }
                // Inside the vector: copy the longest run within one part.
                let g = g as usize;
                let src = part_holding(parts, g);
                let run = (src.offset + src.len - g).min(r - k).min(n_global - g);
                ctx.platform()
                    .copy_d2d_range(&src.buffer, g - src.offset, ext, ext_idx, run, 1)?;
                k += run;
            }
        }
        Ok(())
    }
}

fn part_holding<T: Element>(parts: &[DevicePart<T>], global: usize) -> &DevicePart<T> {
    parts
        .iter()
        .find(|p| global >= p.offset && global < p.offset + p.len)
        .expect("global index not covered by any part")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::skeletons::test_support::ctx;
    use crate::vector::Distribution;

    fn blur3() -> MapOverlap<f32, impl Fn(&StencilView<'_, f32>) -> f32 + Clone> {
        let user = UserFn::new(
            "blur3",
            "float blur3(__global float* in, uint i, uint n) { return (in[i-1]+in[i]+in[i+1])/3.0f; }",
            |v: &StencilView<'_, f32>| (v.get(-1) + v.get(0) + v.get(1)) / 3.0,
        );
        MapOverlap::new(user, 1, Boundary::Clamp)
    }

    fn reference_blur3_clamp(data: &[f32]) -> Vec<f32> {
        let n = data.len();
        (0..n)
            .map(|i| {
                let l = data[i.saturating_sub(1)];
                let r = data[(i + 1).min(n - 1)];
                (l + data[i] + r) / 3.0
            })
            .collect()
    }

    #[test]
    fn stencil_on_one_device() {
        let c = ctx(1);
        let data: Vec<f32> = (0..100).map(|i| ((i * 31) % 17) as f32).collect();
        let v = Vector::from_vec(&c, data.clone());
        let out = blur3().apply(&v).unwrap().to_vec().unwrap();
        let want = reference_blur3_clamp(&data);
        for (a, b) in out.iter().zip(&want) {
            assert!((a - b).abs() < 1e-5);
        }
    }

    #[test]
    fn halo_exchange_across_block_parts() {
        let c = ctx(4);
        let data: Vec<f32> = (0..101).map(|i| (i as f32).sin() * 10.0).collect();
        let v = Vector::from_vec(&c, data.clone());
        v.set_distribution(Distribution::Block).unwrap();
        v.ensure_on_devices().unwrap();
        let before = c.platform().stats_snapshot();
        let out = blur3().apply(&v).unwrap().to_vec().unwrap();
        let delta = c.platform().stats_snapshot() - before;
        assert!(
            delta.d2d_transfers > 0,
            "block halos must move between devices"
        );
        let want = reference_blur3_clamp(&data);
        for (i, (a, b)) in out.iter().zip(&want).enumerate() {
            assert!((a - b).abs() < 1e-4, "mismatch at {i}: {a} vs {b}");
        }
    }

    #[test]
    fn neutral_boundary() {
        let c = ctx(1);
        let user = UserFn::new(
            "sum3",
            "float sum3(__global float* in, uint i, uint n) { return in[i-1]+in[i]+in[i+1]; }",
            |v: &StencilView<'_, f32>| v.get(-1) + v.get(0) + v.get(1),
        );
        let st = MapOverlap::new(user, 1, Boundary::Neutral(100.0));
        let v = Vector::from_vec(&c, vec![1.0f32, 2.0, 3.0]);
        let out = st.apply(&v).unwrap().to_vec().unwrap();
        assert_eq!(out, vec![103.0, 6.0, 105.0]);
    }

    #[test]
    fn radius_larger_than_part() {
        // 4 devices, 8 elements -> parts of 2; radius 3 spans parts.
        let c = ctx(4);
        let data: Vec<f32> = (0..8).map(|i| i as f32).collect();
        let v = Vector::from_vec(&c, data.clone());
        v.set_distribution(Distribution::Block).unwrap();
        let user = UserFn::new(
            "wide",
            "float wide(__global float* in, uint i, uint n) { return in[i-3]+in[i+3]; }",
            |v: &StencilView<'_, f32>| v.get(-3) + v.get(3),
        );
        let st = MapOverlap::new(user, 3, Boundary::Neutral(0.0));
        let out = st.apply(&v).unwrap().to_vec().unwrap();
        let want: Vec<f32> = (0..8i32)
            .map(|i| {
                let l = if i - 3 >= 0 { (i - 3) as f32 } else { 0.0 };
                let r = if i + 3 < 8 { (i + 3) as f32 } else { 0.0 };
                l + r
            })
            .collect();
        assert_eq!(out, want);
    }

    #[test]
    fn out_of_radius_access_is_a_typed_error() {
        let c = ctx(1);
        let user = UserFn::new(
            "bad",
            "float bad(__global float* in, uint i, uint n) { return in[i-2]; }",
            |v: &StencilView<'_, f32>| v.get(-2),
        );
        let st = MapOverlap::new(user, 1, Boundary::Clamp);
        let v = Vector::from_vec(&c, vec![1.0f32; 8]);
        let err = st.apply(&v).expect_err("launch must fail");
        assert!(err.to_string().contains("exceeds radius"), "{err}");
    }
}
