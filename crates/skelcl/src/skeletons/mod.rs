//! The algorithmic skeletons (paper Section III-B):
//! [`Map`], [`Zip`], [`Reduce`], [`Scan`] — plus the with-arguments Map
//! variants of Section III-C ([`MapArgs`], [`MapVoid`]) and the
//! [`MapOverlap`] stencil extension that the paper's conclusion announces
//! as follow-up work.
//!
//! Every skeleton is a higher-order entity customized by a [`UserFn`](crate::UserFn)
//! (source string + Rust twin, see [`crate::skel_fn!`]). Construction
//! generates the OpenCL-C program; the first call per context builds it
//! through the two-level kernel cache; every call then launches on each
//! device holding a part of the input, per the input's distribution.

mod allpairs;
mod map;
mod map_overlap;
mod map_reduce;
mod pipeline;
mod reduce;
mod reduce2d;
mod scan;
mod stencil2d;
mod zip;

pub use allpairs::{AllPairs, AllPairsStrategy};
pub use map::{Map, MapArgs, MapVoid};
pub use map_overlap::{Boundary, MapOverlap, StencilView};
pub use map_reduce::{MapIndex, MapReduce};
pub use pipeline::{
    PipeMap, PipeStencil, PipeStencilPair, PipeView, PipeZip, Pipeline, PipelineExpr, Start,
};
pub use reduce::{Reduce, ReduceStrategy};
pub use reduce2d::{ReduceCols, ReduceColsArg, ReduceRows, ReduceRowsArg};
pub use scan::{Scan, ScanStrategy};
pub use stencil2d::{Boundary2D, Stencil2D, Stencil2DView};
pub use zip::{Zip, ZipArgs};

use crate::context::Context;
use crate::error::Result;
use crate::vector::{DevicePart, Distribution, Vector};
use vgpu::Scalar as Element;

/// Allocate output parts matching an input part layout (same devices, same
/// offsets/lengths). Used by the element-wise skeletons, whose output
/// inherits the input's distribution.
pub(crate) fn alloc_matching_parts<T: Element, U: Element>(
    ctx: &Context,
    parts: &[DevicePart<T>],
) -> Result<Vec<DevicePart<U>>> {
    let mut out = Vec::with_capacity(parts.len());
    for p in parts {
        out.push(DevicePart {
            device: p.device,
            offset: p.offset,
            len: p.len,
            buffer: ctx.device(p.device).alloc::<U>(p.len)?,
        });
    }
    Ok(out)
}

/// Allocate output matrix parts matching an input part layout (same
/// devices, same owned/halo row geometry, same column range). Used by the
/// element-wise matrix skeleton paths.
pub(crate) fn alloc_matching_matrix_parts<T: Element, U: Element>(
    ctx: &Context,
    parts: &[crate::matrix::MatrixPart<T>],
) -> Result<Vec<crate::matrix::MatrixPart<U>>> {
    let mut out = Vec::with_capacity(parts.len());
    for p in parts {
        out.push(crate::matrix::MatrixPart {
            device: p.device,
            row_offset: p.row_offset,
            rows: p.rows,
            halo_above: p.halo_above,
            halo_below: p.halo_below,
            col_offset: p.col_offset,
            cols: p.cols,
            buffer: ctx.device(p.device).alloc::<U>(p.span_rows() * p.cols)?,
        });
    }
    Ok(out)
}

/// Wrap computed parts as the output vector of an element-wise skeleton.
pub(crate) fn output_vector<U: Element>(
    ctx: &Context,
    len: usize,
    dist: Distribution,
    parts: Vec<DevicePart<U>>,
) -> Vector<U> {
    Vector::from_device_parts(ctx, len, dist, parts)
}

/// 1-D launch range for `len` elements under the context's work-group size.
pub(crate) fn linear_range(ctx: &Context, len: usize) -> vgpu::NDRange {
    let wg = ctx.work_group().min(len.max(1));
    vgpu::NDRange::linear(len.max(1), wg)
}

/// 2-D launch range over a `cols × rows` grid: square-ish work-groups (like
/// SkelCL's 32×4 / 16×16 stencil groups) whose size stays within the
/// context's configured budget.
pub(crate) fn range_2d(ctx: &Context, cols: usize, rows: usize) -> vgpu::NDRange {
    let budget = ctx.work_group().max(1);
    let lx = cols.clamp(1, 16.min(budget));
    let ly = rows.clamp(1, (budget / lx).max(1)).min(16);
    vgpu::NDRange::two_d((cols.max(1), rows.max(1)), (lx, ly))
}

#[cfg(test)]
pub(crate) mod test_support {
    use crate::context::{Context, ContextConfig};

    /// A small multi-CU context for skeleton tests.
    pub fn ctx(n_devices: usize) -> Context {
        Context::new(
            ContextConfig::default()
                .devices(n_devices)
                .spec(vgpu::DeviceSpec::tiny())
                .work_group(64)
                .cache_tag("skelcl-skeleton-tests"),
        )
    }
}
