//! The Stencil2D skeleton: a 2D stencil over [`Matrix`] with automatic
//! inter-device halo exchange.
//!
//! This is the 2D generalisation of [`crate::MapOverlap`] — the skeleton
//! behind SkelCL's image-processing benchmarks (Gaussian blur, Sobel,
//! Canny). Each output element is computed from its input element and the
//! `radius`-neighbourhood around it. Under a
//! [`MatrixDistribution::RowBlock`] distribution the neighbourhood crosses
//! device boundaries; the halo rows the distribution maintains (refreshed
//! by an automatic [`Matrix::halo_exchange`] when stale) provide them
//! without gathering the whole matrix anywhere.
//!
//! Out-of-matrix accesses follow the [`Boundary2D`] mode: `Neumann`
//! replicates the edge element (zero-gradient), `Wrap` treats the matrix as
//! a torus, `Zero` reads the element type's default.

use crate::codegen::{self, UserFn};
use crate::context::Context;
use crate::error::Result;
use crate::matrix::{
    exchange_part_halos, exchange_part_halos_overlapped, Matrix, MatrixDistribution, MatrixPart,
    UploadChunk,
};
use crate::meter;
use crate::skeletons::range_2d;
use std::marker::PhantomData;
use std::sync::Arc;
use vgpu::{Buffer, CompiledKernel, Event, Item, KernelBody, Program, Scalar as Element};

/// What out-of-matrix neighbourhood positions read.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Boundary2D {
    /// Replicate the nearest edge element (zero-gradient boundary).
    Neumann,
    /// Wrap around: the matrix is a torus.
    Wrap,
    /// Read the element type's default value.
    Zero,
}

impl Boundary2D {
    /// The spelling used in generated program names (part of the kernel
    /// cache key — each boundary mode emits different index arithmetic).
    pub fn codegen_name(self) -> &'static str {
        match self {
            Boundary2D::Neumann => "neumann",
            Boundary2D::Wrap => "wrap",
            Boundary2D::Zero => "zero",
        }
    }
}

/// The customizing function's view of one stencil application: counted
/// access to the `[-radius, +radius]²` neighbourhood of its element.
pub struct Stencil2DView<'a, T: Element> {
    buf: &'a Buffer<T>,
    /// Matrix width (also the part buffer's row stride).
    cols: usize,
    /// Matrix height.
    n_rows: usize,
    /// The centre's row within the part's span buffer.
    span_row: usize,
    /// Total rows in the part's span buffer.
    span_rows: usize,
    /// The centre's global row.
    g_row: usize,
    /// The centre's column.
    col: usize,
    radius: usize,
    boundary: Boundary2D,
    item: &'a Item<'a>,
}

impl<'a, T: Element> Stencil2DView<'a, T> {
    /// The neighbour at `(row + dr, col + dc)`; `(0, 0)` is the element
    /// itself. Panics if `|dr|` or `|dc|` exceeds the stencil radius,
    /// mirroring SkelCL's out-of-range checks.
    #[inline]
    pub fn get(&self, dr: isize, dc: isize) -> T {
        assert!(
            dr.unsigned_abs() <= self.radius && dc.unsigned_abs() <= self.radius,
            "stencil access ({dr}, {dc}) exceeds radius {}",
            self.radius
        );
        let n_rows = self.n_rows as isize;
        let n_cols = self.cols as isize;
        // Resolve the row against the boundary, then express it as a span
        // offset: span rows are consecutive global rows (mod n_rows), so an
        // effective delta of d lands at span_row + d.
        let row_delta = match self.boundary {
            Boundary2D::Wrap => dr,
            Boundary2D::Neumann => {
                let clamped = (self.g_row as isize + dr).clamp(0, n_rows - 1);
                clamped - self.g_row as isize
            }
            Boundary2D::Zero => {
                let target = self.g_row as isize + dr;
                if target < 0 || target >= n_rows {
                    return T::default();
                }
                dr
            }
        };
        let col = match self.boundary {
            Boundary2D::Wrap => (self.col as isize + dc).rem_euclid(n_cols),
            Boundary2D::Neumann => (self.col as isize + dc).clamp(0, n_cols - 1),
            Boundary2D::Zero => {
                let target = self.col as isize + dc;
                if target < 0 || target >= n_cols {
                    return T::default();
                }
                target
            }
        };
        let mut span_row = self.span_row as isize + row_delta;
        if span_row < 0 || span_row >= self.span_rows as isize {
            // Reachable in two cases, both with `span_rows >= n_rows`: a
            // part holding the whole matrix with no halo rows (Single/Copy
            // under Wrap), and a RowBlock part whose halo was clamped to
            // the matrix height because the radius meets or exceeds it.
            // Span rows are consecutive global rows (mod n_rows), so
            // reducing the overflowed span position modulo the height
            // lands on a span row holding exactly the wrapped target row.
            debug_assert!(
                self.span_rows >= self.n_rows,
                "beyond-span stencil read with a span narrower than the matrix"
            );
            span_row = span_row.rem_euclid(n_rows);
        }
        self.item
            .read(self.buf, span_row as usize * self.cols + col as usize)
    }

    /// The centre's global position `(row, col)`.
    pub fn position(&self) -> (usize, usize) {
        (self.g_row, self.col)
    }

    /// The matrix dimensions `(rows, cols)`.
    pub fn dims(&self) -> (usize, usize) {
        (self.n_rows, self.cols)
    }

    pub fn radius(&self) -> usize {
        self.radius
    }
}

/// The Stencil2D skeleton.
pub struct Stencil2D<T: Element, U: Element, F> {
    user: UserFn<F>,
    radius: usize,
    boundary: Boundary2D,
    program: Program,
    /// The ping-pong form behind [`Stencil2D::iterate`] (only launchable
    /// when `U == T`; generating the source is free either way).
    iter_program: Program,
    _pd: PhantomData<fn(T) -> U>,
}

impl<T, U, F> Stencil2D<T, U, F>
where
    T: Element,
    U: Element,
    F: Fn(&Stencil2DView<'_, T>) -> U + Send + Sync + Clone + 'static,
{
    pub fn new(user: UserFn<F>, radius: usize, boundary: Boundary2D) -> Self {
        let program = codegen::stencil2d_program(
            user.name(),
            user.source(),
            T::TYPE_NAME,
            U::TYPE_NAME,
            radius,
            boundary.codegen_name(),
        );
        let iter_program = codegen::stencil2d_iter_program(
            user.name(),
            user.source(),
            T::TYPE_NAME,
            radius,
            boundary.codegen_name(),
        );
        Stencil2D {
            user,
            radius,
            boundary,
            program,
            iter_program,
            _pd: PhantomData,
        }
    }

    /// The generated OpenCL-C program (exposed for the cache experiments).
    pub fn program(&self) -> &Program {
        &self.program
    }

    pub fn radius(&self) -> usize {
        self.radius
    }

    pub fn boundary(&self) -> Boundary2D {
        self.boundary
    }

    /// A RowBlock halo narrower than the stencil radius cannot supply the
    /// neighbourhood; widen it (device-side when data is fresh). Column
    /// blocks have no column halos, so a stencil cannot read its horizontal
    /// neighbourhood across parts either: fall back to a row-block layout
    /// with a radius-wide halo (device-side exchange).
    fn ensure_stencil_layout(&self, input: &Matrix<T>) -> Result<()> {
        match input.distribution() {
            MatrixDistribution::RowBlock { halo } if halo < self.radius => {
                input.set_distribution(MatrixDistribution::RowBlock { halo: self.radius })?;
            }
            MatrixDistribution::ColBlock => {
                input.set_distribution(MatrixDistribution::RowBlock { halo: self.radius })?;
            }
            _ => {}
        }
        Ok(())
    }

    /// Launch one stencil pass over `segments` of one part's owned rows:
    /// each `(start, len)` names owned rows `[start, start + len)`, and the
    /// launch covers their disjoint union in one kernel (the interior /
    /// boundary split of the overlapped iterate packs the top and bottom
    /// bands into a single launch this way). The input part's halo rows are
    /// assumed coherent for the rows the segments read.
    ///
    /// `deps = None` issues the legacy device-serializing launch; with
    /// `Some(events)` the kernel is launched **asynchronously** on the main
    /// queue, ordered only by the queue, the events, and the compute
    /// engine. Returns the launch event (`None` when the segments are
    /// empty). Either way every covered element computes the exact same
    /// value — the split changes the modeled timeline, never the data.
    #[allow(clippy::too_many_arguments)]
    fn launch_part_segments(
        &self,
        ctx: &Context,
        compiled: &CompiledKernel,
        ip: &MatrixPart<T>,
        op: &MatrixPart<U>,
        n_rows: usize,
        cols: usize,
        segments: &[(usize, usize)],
        deps: Option<&[Event]>,
    ) -> Result<Option<Event>> {
        let launch_rows: usize = segments.iter().map(|&(_, len)| len).sum();
        if launch_rows == 0 || cols == 0 {
            return Ok(None);
        }
        let static_ops = self.user.static_ops();
        let f = self.user.func().clone();
        let src = ip.buffer.clone();
        let dst = op.buffer.clone();
        let radius = self.radius;
        let boundary = self.boundary;
        let halo_above = ip.halo_above;
        let row_offset = ip.row_offset;
        let span_rows = ip.span_rows();
        let segs: Arc<Vec<(usize, usize)>> = Arc::new(segments.to_vec());
        let body: KernelBody = Arc::new(move |wg| {
            wg.for_each_item(|it| {
                if !it.in_bounds() {
                    return;
                }
                let col = it.global_id(0);
                // Map the compact launch row back to its owned row through
                // the segment list (at most two segments).
                let mut launch_row = it.global_id(1);
                let mut local_row = 0;
                for &(start, len) in segs.iter() {
                    if launch_row < len {
                        local_row = start + launch_row;
                        break;
                    }
                    launch_row -= len;
                }
                let view = Stencil2DView {
                    buf: &src,
                    cols,
                    n_rows,
                    span_row: halo_above + local_row,
                    span_rows,
                    g_row: row_offset + local_row,
                    col,
                    radius,
                    boundary,
                    item: it,
                };
                let (y, dyn_ops) = meter::metered(|| f(&view));
                it.write(&dst, (halo_above + local_row) * cols + col, y);
                it.work(static_ops + dyn_ops);
            });
        });
        let kernel = compiled.with_body(body);
        let nd = range_2d(ctx, cols, launch_rows);
        let event = match deps {
            None => ctx.queue(ip.device).launch(&kernel, nd)?,
            Some(events) => ctx.queue(ip.device).launch_async(&kernel, nd, events)?,
        };
        Ok(Some(event))
    }

    /// Launch one stencil pass over every part pair: `src[i]` (halo rows
    /// assumed coherent) is read, the owned rows of `dst[i]` are written.
    /// Source and destination geometry must mirror each other.
    fn launch_parts(
        &self,
        ctx: &Context,
        compiled: &CompiledKernel,
        src_parts: &[MatrixPart<T>],
        dst_parts: &[MatrixPart<U>],
        n_rows: usize,
        cols: usize,
    ) -> Result<()> {
        for (ip, op) in src_parts.iter().zip(dst_parts) {
            self.launch_part_segments(ctx, compiled, ip, op, n_rows, cols, &[(0, ip.rows)], None)?;
        }
        Ok(())
    }

    /// Apply the skeleton. Under `RowBlock` the input's halo is widened to
    /// the stencil radius if needed and stale halo rows are refreshed by
    /// automatic device-to-device exchange; everything stays on the devices
    /// (lazy copying).
    pub fn apply(&self, input: &Matrix<T>) -> Result<Matrix<U>> {
        let ctx = input.ctx().clone();
        let mut span = ctx.span("stencil2d.apply");
        span.attr("shape", {
            let (r, c) = input.dims();
            format!("{r}x{c}")
        });
        span.attr("distribution", format!("{:?}", input.distribution()));
        span.attr("devices", ctx.n_devices().to_string());
        span.attr("radius", self.radius.to_string());
        let compiled = ctx.get_or_build(&self.program)?;
        self.ensure_stencil_layout(input)?;

        let (n_rows, cols) = input.dims();
        let in_parts = input.parts_with_fresh_halos()?;

        // Output parts mirror the input geometry. Stencils can only write
        // their owned rows (halo outputs would need radius-beyond-halo
        // inputs), so output halos are stale unless there are none.
        let out_parts = alloc_mirror_parts::<T, U>(&ctx, &in_parts, cols)?;
        let out_halos_fresh = stale_free(&in_parts);

        self.launch_parts(&ctx, &compiled, &in_parts, &out_parts, n_rows, cols)?;

        Ok(Matrix::from_device_parts(
            &ctx,
            n_rows,
            cols,
            input.distribution(),
            out_parts,
            out_halos_fresh,
        ))
    }

    /// Like [`Stencil2D::apply`], but when the input still lives on the
    /// host its upload is **streamed in row chunks on the copy stream** and
    /// the stencil launches in chunk-sized row bands, each waiting only for
    /// the upload chunks covering its read window — so the first bands
    /// compute while later chunks are still crossing PCIe, instead of the
    /// whole upload completing before the first kernel. Bit-identical to
    /// [`Stencil2D::apply`] (same generated program, same per-element
    /// math); on device-fresh input it degrades to exactly `apply`'s
    /// schedule.
    pub fn apply_streamed(&self, input: &Matrix<T>, chunk_rows: usize) -> Result<Matrix<U>> {
        let ctx = input.ctx().clone();
        let mut span = ctx.span("stencil2d.apply_streamed");
        span.attr("shape", {
            let (r, c) = input.dims();
            format!("{r}x{c}")
        });
        span.attr("distribution", format!("{:?}", input.distribution()));
        span.attr("devices", ctx.n_devices().to_string());
        span.attr("radius", self.radius.to_string());
        span.attr("chunk_rows", chunk_rows.to_string());
        let compiled = ctx.get_or_build(&self.program)?;
        self.ensure_stencil_layout(input)?;

        let (n_rows, cols) = input.dims();
        let chunk_rows = chunk_rows.max(1);
        let (in_parts, upload_chunks) = input.parts_with_upload_chunks(chunk_rows)?;

        let out_parts = alloc_mirror_parts::<T, U>(&ctx, &in_parts, cols)?;
        let out_halos_fresh = stale_free(&in_parts);

        for ((ip, op), chunks) in in_parts.iter().zip(&out_parts).zip(&upload_chunks) {
            if ip.rows == 0 || cols == 0 {
                continue;
            }
            if chunks.is_empty() {
                // Already resident: the plain device-serializing launch.
                self.launch_part_segments(
                    &ctx,
                    &compiled,
                    ip,
                    op,
                    n_rows,
                    cols,
                    &[(0, ip.rows)],
                    None,
                )?;
                continue;
            }
            // Launch in chunk-aligned owned-row bands, each depending on
            // the upload chunks covering its radius-widened read window.
            let mut start = 0;
            while start < ip.rows {
                let len = chunk_rows.min(ip.rows - start);
                let deps = covering_chunks(chunks, ip, self.radius, self.boundary, start, len);
                self.launch_part_segments(
                    &ctx,
                    &compiled,
                    ip,
                    op,
                    n_rows,
                    cols,
                    &[(start, len)],
                    Some(&deps),
                )?;
                start += len;
            }
        }

        Ok(Matrix::from_device_parts(
            &ctx,
            n_rows,
            cols,
            input.distribution(),
            out_parts,
            out_halos_fresh,
        ))
    }
}

impl<T, F> Stencil2D<T, T, F>
where
    T: Element,
    F: Fn(&Stencil2DView<'_, T>) -> T + Send + Sync + Clone + 'static,
{
    /// Apply the stencil `n` times, feeding each pass's output to the next
    /// — the iterative form behind heat relaxation, Jacobi sweeps and
    /// game-of-life (bit-identical to `n` chained [`Stencil2D::apply`]
    /// calls, for every boundary mode and device count).
    ///
    /// Unlike the chain, the whole iteration stays inside two
    /// device-resident part sets that ping-pong roles each round:
    ///
    /// * **no intermediate matrices** — two buffers per device total,
    ///   instead of one fresh allocation per pass;
    /// * **one batched halo exchange per iteration** — issued directly on
    ///   the part buffers, without re-synchronising the host in between,
    ///   and (under `Neumann`/`Zero` boundaries) without the wrapped
    ///   matrix-edge rows only `Wrap` ever reads;
    /// * **one cached kernel across all `n` launches** — the
    ///   [`codegen::stencil2d_iter_program`] form is built once and rebound
    ///   to the swapped buffers each round.
    ///
    /// `iterate(input, 0)` is the identity: it returns a handle to `input`.
    ///
    /// ## Overlapped schedule (the default)
    ///
    /// Each round is split into an **interior** launch (owned rows more
    /// than the boundary band away from the part edges — they read no halo
    /// rows) and a **boundary** launch (the top and bottom bands, packed
    /// into one kernel). The halo exchange for round *r* is issued on the
    /// **copy stream** with events tying it to round *r−1*'s boundary
    /// kernels, so the copies run on the devices' copy engines *underneath*
    /// round *r*'s interior kernels; only the boundary launch waits for
    /// them. Results are bit-identical to the serial schedule
    /// ([`Stencil2D::iterate_serial`]) — same kernels, same data, only the
    /// modeled timeline changes — and exactly the same exchange events are
    /// counted. Parts that receive no exchanged rows in a round (one
    /// device, halo-free layouts) launch as a single kernel, so the
    /// overlapped schedule never pays the split where there is nothing to
    /// hide.
    pub fn iterate(&self, input: &Matrix<T>, n: usize) -> Result<Matrix<T>> {
        self.iterate_impl(input, n, true)
    }

    /// The serial schedule of [`Stencil2D::iterate`]: one kernel per part
    /// per round, each round's halo exchange device-serializing on the main
    /// timeline (the pre-overlap behaviour, kept as the measurable
    /// baseline for `fig_overlap` and the overlap property suite).
    pub fn iterate_serial(&self, input: &Matrix<T>, n: usize) -> Result<Matrix<T>> {
        self.iterate_impl(input, n, false)
    }

    fn iterate_impl(&self, input: &Matrix<T>, n: usize, overlap: bool) -> Result<Matrix<T>> {
        if n == 0 {
            return Ok(input.clone());
        }
        let ctx = input.ctx().clone();
        let mut span = ctx.span("stencil2d.iterate");
        span.attr("shape", {
            let (r, c) = input.dims();
            format!("{r}x{c}")
        });
        span.attr("distribution", format!("{:?}", input.distribution()));
        span.attr("devices", ctx.n_devices().to_string());
        span.attr("radius", self.radius.to_string());
        span.attr("iterations", n.to_string());
        span.attr("schedule", if overlap { "overlapped" } else { "serial" });
        let compiled = ctx.get_or_build(&self.iter_program)?;
        self.ensure_stencil_layout(input)?;

        let (n_rows, cols) = input.dims();
        // Round 1 reads the input matrix's own parts (exchanging its halos
        // if stale — counted like any other exchange event).
        let in_parts = input.parts_with_fresh_halos()?;
        let out_halos_fresh = stale_free(&in_parts);

        // Only `Wrap` reads the halo rows that wrap around the matrix
        // edge; for the other boundaries the per-iteration exchange skips
        // them (strictly fewer transfers on the same critical path).
        let skip_wrapped = self.boundary != Boundary2D::Wrap;

        let mut src = in_parts;
        let mut dst = alloc_mirror_parts::<T, T>(&ctx, &src, cols)?;
        let mut spare = if n > 1 {
            Some(alloc_mirror_parts::<T, T>(&ctx, &src, cols)?)
        } else {
            None
        };

        // Per device: the events the next round's exchange must wait for —
        // the kernels that last wrote (and, transitively, read) the rows
        // the copies touch. Round 1 anchors on a marker joining everything
        // already scheduled on the device (the input's upload/exchange).
        let mut producers: Vec<Vec<Event>> = if overlap {
            (0..ctx.n_devices())
                .map(|d| vec![ctx.queue(d).enqueue_marker()])
                .collect()
        } else {
            Vec::new()
        };

        for round in 1..=n {
            if !overlap {
                if round > 1 {
                    // The previous round wrote only owned rows; one batched
                    // exchange refreshes this round's input halos. The
                    // device clocks already order the copies against the
                    // producing kernels — the host never blocks between
                    // rounds.
                    if exchange_part_halos(&ctx, &src, n_rows, cols, skip_wrapped)? {
                        ctx.note_halo_exchange();
                    }
                }
                self.launch_parts(&ctx, &compiled, &src, &dst, n_rows, cols)?;
            } else {
                // Exchange round r's halos on the copy stream, ordered only
                // against round r-1's boundary kernels: the copies run
                // under this round's interior launches.
                let exchange_events = if round > 1 {
                    let (exchanged, events) = exchange_part_halos_overlapped(
                        &ctx,
                        &src,
                        n_rows,
                        cols,
                        skip_wrapped,
                        &producers,
                    )?;
                    if exchanged {
                        ctx.note_halo_exchange();
                    }
                    events
                } else {
                    vec![Vec::new(); src.len()]
                };
                let mut next_producers: Vec<Vec<Event>> = vec![Vec::new(); ctx.n_devices()];
                for (idx, (ip, op)) in src.iter().zip(&dst).enumerate() {
                    if ip.rows == 0 || cols == 0 {
                        continue;
                    }
                    // Round 1 reads buffers produced by device-serializing
                    // commands; the marker stands in for their events.
                    let base_deps: &[Event] = if round == 1 {
                        &producers[ip.device]
                    } else {
                        &[]
                    };
                    let produced = if exchange_events[idx].is_empty() {
                        // Nothing exchanged into this part this round:
                        // nothing to hide, launch the whole part at once.
                        self.launch_part_segments(
                            &ctx,
                            &compiled,
                            ip,
                            op,
                            n_rows,
                            cols,
                            &[(0, ip.rows)],
                            Some(base_deps),
                        )?
                    } else {
                        // The boundary band must cover both the rows that
                        // read exchanged halos (radius) and the rows the
                        // neighbours' halos copy out next round (halo).
                        let band = self
                            .radius
                            .max(ip.halo_above)
                            .max(ip.halo_below)
                            .min(ip.rows);
                        let mut boundary_deps = exchange_events[idx].clone();
                        boundary_deps.extend_from_slice(base_deps);
                        if 2 * band >= ip.rows {
                            // No interior: the part is all boundary.
                            self.launch_part_segments(
                                &ctx,
                                &compiled,
                                ip,
                                op,
                                n_rows,
                                cols,
                                &[(0, ip.rows)],
                                Some(&boundary_deps),
                            )?
                        } else {
                            // Interior first (it has no event dependencies,
                            // so the in-order queue starts it immediately
                            // while the exchange still runs), then the top
                            // and bottom bands as one dependent launch.
                            self.launch_part_segments(
                                &ctx,
                                &compiled,
                                ip,
                                op,
                                n_rows,
                                cols,
                                &[(band, ip.rows - 2 * band)],
                                Some(base_deps),
                            )?;
                            self.launch_part_segments(
                                &ctx,
                                &compiled,
                                ip,
                                op,
                                n_rows,
                                cols,
                                &[(0, band), (ip.rows - band, band)],
                                Some(&boundary_deps),
                            )?
                        }
                    };
                    if let Some(ev) = produced {
                        // The boundary launch is enqueued last on the
                        // in-order queue, so this single event fences every
                        // round-r command of the device.
                        next_producers[ip.device] = vec![ev];
                    }
                }
                for (d, evs) in next_producers.into_iter().enumerate() {
                    if !evs.is_empty() {
                        producers[d] = evs;
                    }
                }
            }
            if round < n {
                let prev_src = std::mem::replace(&mut src, std::mem::take(&mut dst));
                dst = if round == 1 {
                    // Never write back into the caller's input buffers.
                    spare.take().expect("pong buffers exist when n > 1")
                } else {
                    prev_src
                };
            }
        }

        Ok(Matrix::from_device_parts(
            &ctx,
            n_rows,
            cols,
            input.distribution(),
            dst,
            out_halos_fresh,
        ))
    }
}

/// Allocate a part set mirroring `parts`' geometry with fresh (element
/// type `V`) buffers on the same devices. Shared with the fused pipeline
/// launcher, whose stencil groups mirror their input layout the same way.
pub(crate) fn alloc_mirror_parts<T: Element, V: Element>(
    ctx: &Context,
    parts: &[MatrixPart<T>],
    cols: usize,
) -> Result<Vec<MatrixPart<V>>> {
    let mut out = Vec::with_capacity(parts.len());
    for p in parts {
        out.push(MatrixPart {
            device: p.device,
            row_offset: p.row_offset,
            rows: p.rows,
            halo_above: p.halo_above,
            halo_below: p.halo_below,
            col_offset: p.col_offset,
            cols: p.cols,
            buffer: ctx.device(p.device).alloc::<V>(p.span_rows() * cols)?,
        });
    }
    Ok(out)
}

/// Can a stencil's output start life with coherent halos? Only when there
/// are none to go stale.
pub(crate) fn stale_free<T: Element>(parts: &[MatrixPart<T>]) -> bool {
    parts.iter().all(|p| p.halo_above == 0 && p.halo_below == 0)
}

/// The upload-chunk events a band launch over owned rows
/// `[start, start + len)` of `p` must wait for: the chunks intersecting the
/// band's radius-widened span-row read window. `Neumann` and `Zero` never
/// read outside the span (they clamp or synthesize), so the window clamps
/// to it; under `Wrap` a window leaving the span wraps modulo the matrix
/// height (`Stencil2DView::get`'s beyond-span rule) and can touch any span
/// row, so every chunk becomes a dependency.
fn covering_chunks<T: Element>(
    chunks: &[UploadChunk],
    p: &MatrixPart<T>,
    radius: usize,
    boundary: Boundary2D,
    start: usize,
    len: usize,
) -> Vec<Event> {
    let span = p.span_rows() as isize;
    let mut lo = (p.halo_above + start) as isize - radius as isize;
    let mut hi = (p.halo_above + start + len - 1) as isize + radius as isize;
    if lo < 0 || hi >= span {
        if boundary == Boundary2D::Wrap {
            return chunks.iter().map(|c| c.event.clone()).collect();
        }
        lo = lo.max(0);
        hi = hi.min(span - 1);
    }
    chunks
        .iter()
        .filter(|c| (c.span_start as isize) <= hi && lo < (c.span_start + c.span_len) as isize)
        .map(|c| c.event.clone())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::skeletons::test_support::ctx;

    /// 5-point Laplacian-style sum, radius 1.
    fn cross_sum() -> Stencil2D<f32, f32, impl Fn(&Stencil2DView<'_, f32>) -> f32 + Clone> {
        let user = UserFn::new(
            "cross_sum",
            "float cross_sum(__global float* in, int r, int c, uint nr, uint nc) {\n\
             return stencil_at(in,r,c,nr,nc,-1,0) + stencil_at(in,r,c,nr,nc,1,0)\n\
                  + stencil_at(in,r,c,nr,nc,0,-1) + stencil_at(in,r,c,nr,nc,0,1)\n\
                  + stencil_at(in,r,c,nr,nc,0,0);\n}",
            |v: &Stencil2DView<'_, f32>| {
                v.get(-1, 0) + v.get(1, 0) + v.get(0, -1) + v.get(0, 1) + v.get(0, 0)
            },
        );
        Stencil2D::new(user, 1, Boundary2D::Neumann)
    }

    fn reference_cross_sum(
        data: &[f32],
        rows: usize,
        cols: usize,
        boundary: Boundary2D,
    ) -> Vec<f32> {
        let at = |r: isize, c: isize| -> f32 {
            let (r, c) = match boundary {
                Boundary2D::Neumann => {
                    (r.clamp(0, rows as isize - 1), c.clamp(0, cols as isize - 1))
                }
                Boundary2D::Wrap => (r.rem_euclid(rows as isize), c.rem_euclid(cols as isize)),
                Boundary2D::Zero => {
                    if r < 0 || r >= rows as isize || c < 0 || c >= cols as isize {
                        return 0.0;
                    }
                    (r, c)
                }
            };
            data[r as usize * cols + c as usize]
        };
        let mut out = Vec::with_capacity(rows * cols);
        for r in 0..rows as isize {
            for c in 0..cols as isize {
                out.push(at(r - 1, c) + at(r + 1, c) + at(r, c - 1) + at(r, c + 1) + at(r, c));
            }
        }
        out
    }

    fn test_image(rows: usize, cols: usize) -> Vec<f32> {
        (0..rows * cols)
            .map(|i| ((i * 37) % 101) as f32 - 50.0)
            .collect()
    }

    #[test]
    fn stencil_on_one_device_matches_reference() {
        let c = ctx(1);
        let (rows, cols) = (13, 9);
        let data = test_image(rows, cols);
        let m = Matrix::from_vec(&c, rows, cols, data.clone());
        let out = cross_sum().apply(&m).unwrap().to_vec().unwrap();
        assert_eq!(
            out,
            reference_cross_sum(&data, rows, cols, Boundary2D::Neumann)
        );
    }

    #[test]
    fn multi_device_output_is_bit_identical_to_single() {
        let (rows, cols) = (23, 11);
        let data = test_image(rows, cols);
        let single = {
            let c = ctx(1);
            let m = Matrix::from_vec(&c, rows, cols, data.clone());
            cross_sum().apply(&m).unwrap().to_vec().unwrap()
        };
        for devices in [2usize, 3, 4] {
            let c = ctx(devices);
            let m = Matrix::from_vec(&c, rows, cols, data.clone());
            m.set_distribution(MatrixDistribution::RowBlock { halo: 1 })
                .unwrap();
            let got = cross_sum().apply(&m).unwrap().to_vec().unwrap();
            assert_eq!(got, single, "{devices}-device run must be bit-identical");
        }
    }

    #[test]
    fn all_boundary_modes_match_the_reference() {
        let (rows, cols) = (10, 7);
        let data = test_image(rows, cols);
        for boundary in [Boundary2D::Neumann, Boundary2D::Wrap, Boundary2D::Zero] {
            let c = ctx(3);
            let user = UserFn::new(
                "csum",
                "float csum(__global float* in, int r, int c, uint nr, uint nc) { /* as cross_sum */ }",
                |v: &Stencil2DView<'_, f32>| {
                    v.get(-1, 0) + v.get(1, 0) + v.get(0, -1) + v.get(0, 1) + v.get(0, 0)
                },
            );
            let st = Stencil2D::new(user, 1, boundary);
            let m = Matrix::from_vec(&c, rows, cols, data.clone());
            m.set_distribution(MatrixDistribution::RowBlock { halo: 1 })
                .unwrap();
            let got = st.apply(&m).unwrap().to_vec().unwrap();
            assert_eq!(
                got,
                reference_cross_sum(&data, rows, cols, boundary),
                "{boundary:?}"
            );
        }
    }

    #[test]
    fn narrow_halo_is_widened_automatically() {
        let c = ctx(2);
        let (rows, cols) = (16, 5);
        let data = test_image(rows, cols);
        let m = Matrix::from_vec(&c, rows, cols, data.clone());
        m.set_distribution(MatrixDistribution::RowBlock { halo: 0 })
            .unwrap();
        let user = UserFn::new(
            "wide",
            "float wide(__global float* in, int r, int c, uint nr, uint nc) { /* r3 sum */ }",
            |v: &Stencil2DView<'_, f32>| v.get(-3, 0) + v.get(3, 0),
        );
        let st = Stencil2D::new(user, 3, Boundary2D::Zero);
        let got = st.apply(&m).unwrap().to_vec().unwrap();
        assert_eq!(
            m.distribution(),
            MatrixDistribution::RowBlock { halo: 3 },
            "halo must be widened to the radius"
        );
        let want: Vec<f32> = (0..rows as isize)
            .flat_map(|r| {
                let data = &data;
                (0..cols as isize).map(move |c| {
                    let up = if r >= 3 {
                        data[(r - 3) as usize * cols + c as usize]
                    } else {
                        0.0
                    };
                    let down = if r + 3 < rows as isize {
                        data[(r + 3) as usize * cols + c as usize]
                    } else {
                        0.0
                    };
                    up + down
                })
            })
            .collect();
        assert_eq!(got, want);
    }

    #[test]
    fn halo_exchange_shows_up_in_transfer_accounting() {
        let c = ctx(4);
        let (rows, cols) = (32, 8);
        let m = Matrix::from_vec(&c, rows, cols, test_image(rows, cols));
        m.set_distribution(MatrixDistribution::RowBlock { halo: 1 })
            .unwrap();
        let st = cross_sum();
        let first = st.apply(&m).unwrap();
        // The second application consumes a device-fresh matrix whose halos
        // were never written: the skeleton must trigger the exchange.
        assert!(!first.halos_fresh());
        let before = c.platform().stats_snapshot();
        let second = st.apply(&first).unwrap();
        let delta = c.platform().stats_snapshot() - before;
        assert!(
            delta.d2d_transfers > 0,
            "chained stencil must exchange halos device-to-device"
        );
        assert_eq!(delta.h2d_transfers, 0, "no host round trip");
        assert_eq!(delta.d2h_transfers, 0, "no host round trip");
        // And the result is still right.
        let host = m.to_vec().unwrap();
        let once = reference_cross_sum(&host, rows, cols, Boundary2D::Neumann);
        let twice = reference_cross_sum(&once, rows, cols, Boundary2D::Neumann);
        assert_eq!(second.to_vec().unwrap(), twice);
    }

    #[test]
    fn radius_larger_than_a_part_spans_several_parts() {
        // 4 devices × 2 rows per part, radius 3 reaches two parts away.
        let c = ctx(4);
        let (rows, cols) = (8, 3);
        let data = test_image(rows, cols);
        let m = Matrix::from_vec(&c, rows, cols, data.clone());
        m.set_distribution(MatrixDistribution::RowBlock { halo: 3 })
            .unwrap();
        let user = UserFn::new(
            "far",
            "float far(__global float* in, int r, int c, uint nr, uint nc) { /* +-3 rows */ }",
            |v: &Stencil2DView<'_, f32>| v.get(-3, 0) + v.get(3, 0),
        );
        let st = Stencil2D::new(user, 3, Boundary2D::Wrap);
        let got = st.apply(&m).unwrap().to_vec().unwrap();
        let want: Vec<f32> = (0..rows as isize)
            .flat_map(|r| {
                let data = &data;
                (0..cols as isize).map(move |c| {
                    let up = data[(r - 3).rem_euclid(rows as isize) as usize * cols + c as usize];
                    let down = data[(r + 3).rem_euclid(rows as isize) as usize * cols + c as usize];
                    up + down
                })
            })
            .collect();
        assert_eq!(got, want);
    }

    #[test]
    fn out_of_radius_access_is_a_typed_error() {
        let c = ctx(1);
        let user = UserFn::new(
            "bad",
            "float bad(__global float* in, int r, int c, uint nr, uint nc) { /* in[r-2] */ }",
            |v: &Stencil2DView<'_, f32>| v.get(-2, 0),
        );
        let st = Stencil2D::new(user, 1, Boundary2D::Neumann);
        let m = Matrix::from_vec(&c, 4, 4, vec![1.0f32; 16]);
        let err = st.apply(&m).expect_err("launch must fail");
        assert!(err.to_string().contains("exceeds radius"), "{err}");
    }

    #[test]
    fn iterate_matches_chained_applies_bitwise() {
        let (rows, cols) = (17, 9);
        let data = test_image(rows, cols);
        for boundary in [Boundary2D::Neumann, Boundary2D::Wrap, Boundary2D::Zero] {
            for devices in [1usize, 2, 4] {
                let c = ctx(devices);
                let user = UserFn::new(
                    "csum",
                    "float csum(__global float* in, int r, int c, uint nr, uint nc) { /* cross */ }",
                    |v: &Stencil2DView<'_, f32>| {
                        0.2 * (v.get(-1, 0) + v.get(1, 0) + v.get(0, -1) + v.get(0, 1) + v.get(0, 0))
                    },
                );
                let st = Stencil2D::new(user, 1, boundary);
                let m = Matrix::from_vec(&c, rows, cols, data.clone());
                let chained = {
                    let mut cur = st.apply(&m).unwrap();
                    for _ in 1..5 {
                        cur = st.apply(&cur).unwrap();
                    }
                    cur.to_vec().unwrap()
                };
                let m2 = Matrix::from_vec(&c, rows, cols, data.clone());
                let iterated = st.iterate(&m2, 5).unwrap().to_vec().unwrap();
                assert_eq!(
                    iterated.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                    chained.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                    "{boundary:?} on {devices} devices"
                );
            }
        }
    }

    #[test]
    fn iterate_zero_is_the_identity() {
        let c = ctx(2);
        let (rows, cols) = (6, 5);
        let data = test_image(rows, cols);
        let m = Matrix::from_vec(&c, rows, cols, data.clone());
        let out = cross_sum().iterate(&m, 0).unwrap();
        assert_eq!(out.to_vec().unwrap(), data);
    }

    #[test]
    fn iterate_never_writes_the_input() {
        let c = ctx(3);
        let (rows, cols) = (12, 4);
        let data = test_image(rows, cols);
        let m = Matrix::from_vec(&c, rows, cols, data.clone());
        let _ = cross_sum().iterate(&m, 3).unwrap();
        assert_eq!(m.to_vec().unwrap(), data, "input must be untouched");
    }

    #[test]
    fn iterate_stays_on_the_devices() {
        let c = ctx(4);
        let (rows, cols) = (32, 8);
        let m = Matrix::from_vec(&c, rows, cols, test_image(rows, cols));
        m.set_distribution(MatrixDistribution::RowBlock { halo: 1 })
            .unwrap();
        m.ensure_on_devices().unwrap();
        let before = c.platform().stats_snapshot();
        let out = cross_sum().iterate(&m, 8).unwrap();
        let delta = c.platform().stats_snapshot() - before;
        assert_eq!(delta.h2d_transfers, 0, "no host round trip");
        assert_eq!(delta.d2h_transfers, 0, "no host round trip");
        assert!(delta.d2d_transfers > 0, "halo exchange crosses devices");
        // Still correct after the ping-pong.
        let mut want = m.to_vec().unwrap();
        for _ in 0..8 {
            want = reference_cross_sum(&want, rows, cols, Boundary2D::Neumann);
        }
        assert_eq!(out.to_vec().unwrap(), want);
    }

    #[test]
    fn iterate_widens_a_narrow_halo_like_apply() {
        let c = ctx(2);
        let (rows, cols) = (10, 3);
        let m = Matrix::from_vec(&c, rows, cols, test_image(rows, cols));
        m.set_distribution(MatrixDistribution::RowBlock { halo: 0 })
            .unwrap();
        let out = cross_sum().iterate(&m, 2).unwrap();
        assert_eq!(
            m.distribution(),
            MatrixDistribution::RowBlock { halo: 1 },
            "halo must be widened to the radius"
        );
        let mut want = m.to_vec().unwrap();
        for _ in 0..2 {
            want = reference_cross_sum(&want, rows, cols, Boundary2D::Neumann);
        }
        assert_eq!(out.to_vec().unwrap(), want);
    }

    #[test]
    fn wrap_free_single_part_iterate_counts_no_exchanges() {
        // One part owning all rows: its halo rows are all wrapped edge
        // rows, which a Neumann stencil never reads — so the per-round
        // exchange refreshes nothing and must not count as an event.
        let c = ctx(1);
        let m = Matrix::from_vec(&c, 12, 5, test_image(12, 5));
        m.set_distribution(MatrixDistribution::RowBlock { halo: 1 })
            .unwrap();
        let before = c.halo_exchange_count();
        cross_sum().iterate(&m, 5).unwrap();
        assert_eq!(c.halo_exchange_count(), before);
    }

    #[test]
    fn iterate_reuses_one_cached_kernel_for_all_rounds() {
        let c = ctx(2);
        let m = Matrix::from_vec(&c, 16, 8, test_image(16, 8));
        let st = cross_sum();
        st.iterate(&m, 6).unwrap();
        let built = c.programs_built();
        st.iterate(&m, 6).unwrap();
        assert_eq!(c.programs_built(), built, "no rebuild on a second run");
    }

    #[test]
    fn boundary_modes_produce_distinct_programs() {
        let mk = |b: Boundary2D| {
            let user = UserFn::new(
                "f",
                "float f(__global float* in, int r, int c, uint nr, uint nc) { return 0.0f; }",
                |v: &Stencil2DView<'_, f32>| v.get(0, 0),
            );
            Stencil2D::new(user, 1, b).program().hash()
        };
        let n = mk(Boundary2D::Neumann);
        let w = mk(Boundary2D::Wrap);
        let z = mk(Boundary2D::Zero);
        assert_ne!(n, w);
        assert_ne!(w, z);
        assert_ne!(n, z);
    }
}
