//! Passing additional arguments to skeletons (paper Section III-C).
//!
//! *"SkelCL allows the user to pass an arbitrary number of arguments to the
//! function called inside of a skeleton [...] The additional argument is
//! packaged into an `Arguments` object that is passed to the skeleton. [...]
//! It is particularly easy to pass vectors as arguments because no
//! information about the size has to be provided. The arguments will be
//! passed to the skeleton in the same order in which they are added to the
//! `Arguments` object."*
//!
//! Scalars are captured by value; vectors are captured as handles and
//! resolved **per device** at launch time: a `Block`-distributed vector
//! argument resolves to the executing device's local part, a `Copy`/`Single`
//! vector to the full local buffer — which is what makes the OSEM kernel
//! (reading the event block, scatter-adding into the replicated error
//! image) expressible.

use crate::error::{Error, Result};
use crate::matrix::Matrix;
use crate::vector::Vector;
use std::any::Any;
use std::sync::Arc;
use vgpu::{Buffer, Item, Scalar};

/// Type-erased scalar slot.
#[doc(hidden)]
pub trait AnyScalarArg: Send + Sync {
    fn as_any(&self) -> &dyn Any;
    fn type_name(&self) -> &'static str;
}

struct ScalarHolder<T: Scalar>(T);

impl<T: Scalar> AnyScalarArg for ScalarHolder<T> {
    fn as_any(&self) -> &dyn Any {
        &self.0
    }
    fn type_name(&self) -> &'static str {
        T::TYPE_NAME
    }
}

/// Type-erased vector slot: resolves to a device-local buffer at launch.
#[doc(hidden)]
pub trait AnyVectorArg: Send + Sync {
    fn ensure_on_devices(&self) -> Result<()>;
    /// `(buffer as Any, local_len)` for the executing device.
    fn resolve(&self, device: usize) -> Result<(Box<dyn Any + Send + Sync>, usize)>;
    fn global_len(&self) -> usize;
    fn type_name(&self) -> &'static str;
}

impl<T: Scalar> AnyVectorArg for Vector<T> {
    fn ensure_on_devices(&self) -> Result<()> {
        Vector::ensure_on_devices(self)
    }

    fn resolve(&self, device: usize) -> Result<(Box<dyn Any + Send + Sync>, usize)> {
        let parts = self.parts()?;
        let part = parts.iter().find(|p| p.device == device).ok_or_else(|| {
            Error::BadArgument(format!(
                "vector argument has no data on device {device} under {:?}",
                self.distribution()
            ))
        })?;
        Ok((Box::new(part.buffer.clone()), part.len))
    }

    fn global_len(&self) -> usize {
        self.len()
    }

    fn type_name(&self) -> &'static str {
        T::TYPE_NAME
    }
}

/// Type-erased matrix slot: resolves to this device's row span at launch.
#[doc(hidden)]
pub trait AnyMatrixArg: Send + Sync {
    fn ensure_on_devices(&self) -> Result<()>;
    /// `(buffer as Any, cols, span_rows, first_span_global_row, n_rows)`
    /// for the executing device.
    fn resolve(&self, device: usize) -> Result<(Box<dyn Any + Send + Sync>, MatrixArgMeta)>;
    fn type_name(&self) -> &'static str;
}

/// Geometry of one device's view of a matrix argument.
#[doc(hidden)]
#[derive(Debug, Clone, Copy)]
pub struct MatrixArgMeta {
    /// Matrix width (global).
    pub cols: usize,
    pub span_rows: usize,
    /// Global row held by span row 0.
    pub row_offset: usize,
    /// Rows stored above the owned block (wrapped at matrix edges).
    pub halo_above: usize,
    pub n_rows: usize,
    /// First column held by this part (0 for row-based distributions).
    pub col_offset: usize,
    /// Columns held by this part — also the buffer's row stride (equals
    /// `cols` for full-width parts, a column slice under `ColBlock`).
    pub span_cols: usize,
}

impl<T: Scalar> AnyMatrixArg for Matrix<T> {
    fn ensure_on_devices(&self) -> Result<()> {
        Matrix::ensure_on_devices(self)
    }

    fn resolve(&self, device: usize) -> Result<(Box<dyn Any + Send + Sync>, MatrixArgMeta)> {
        let parts = self.parts_with_fresh_halos()?;
        let part = parts
            .iter()
            .find(|p| p.device == device && p.rows > 0 && p.cols > 0)
            .ok_or_else(|| {
                Error::BadArgument(format!(
                    "matrix argument has no data on device {device} under {:?}",
                    self.distribution()
                ))
            })?;
        let meta = MatrixArgMeta {
            cols: self.cols(),
            span_rows: part.span_rows(),
            row_offset: part.row_offset,
            halo_above: part.halo_above,
            n_rows: self.rows(),
            col_offset: part.col_offset,
            span_cols: part.cols,
        };
        Ok((Box::new(part.buffer.clone()), meta))
    }

    fn type_name(&self) -> &'static str {
        T::TYPE_NAME
    }
}

#[doc(hidden)]
pub enum Slot {
    Scalar(Arc<dyn AnyScalarArg>),
    Vector(Arc<dyn AnyVectorArg>),
    Matrix(Arc<dyn AnyMatrixArg>),
}

impl Clone for Slot {
    fn clone(&self) -> Self {
        match self {
            Slot::Scalar(s) => Slot::Scalar(Arc::clone(s)),
            Slot::Vector(v) => Slot::Vector(Arc::clone(v)),
            Slot::Matrix(m) => Slot::Matrix(Arc::clone(m)),
        }
    }
}

/// Converts values into argument slots; implemented for every [`Scalar`]
/// and for vectors, so `args.push(x)` works uniformly as in the paper.
pub trait IntoArg {
    fn into_slot(self) -> Slot;
}

impl<T: Scalar> IntoArg for T {
    fn into_slot(self) -> Slot {
        Slot::Scalar(Arc::new(ScalarHolder(self)))
    }
}

impl<T: Scalar> IntoArg for &Vector<T> {
    fn into_slot(self) -> Slot {
        Slot::Vector(Arc::new(self.clone()))
    }
}

impl<T: Scalar> IntoArg for Vector<T> {
    fn into_slot(self) -> Slot {
        Slot::Vector(Arc::new(self))
    }
}

impl<T: Scalar> IntoArg for &Matrix<T> {
    fn into_slot(self) -> Slot {
        Slot::Matrix(Arc::new(self.clone()))
    }
}

impl<T: Scalar> IntoArg for Matrix<T> {
    fn into_slot(self) -> Slot {
        Slot::Matrix(Arc::new(self))
    }
}

/// The ordered collection of extra arguments for one skeleton call.
#[derive(Clone, Default)]
pub struct Arguments {
    slots: Vec<Slot>,
}

impl Arguments {
    pub fn new() -> Self {
        Arguments::default()
    }

    /// Append an argument; order must match the customizing function's
    /// expectations (position-indexed access), exactly as in the paper.
    pub fn push(&mut self, arg: impl IntoArg) -> &mut Self {
        self.slots.push(arg.into_slot());
        self
    }

    pub fn len(&self) -> usize {
        self.slots.len()
    }

    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Upload every vector argument per its current distribution (the
    /// implicit transfers of Section III-A apply to arguments too).
    pub(crate) fn ensure_on_devices(&self) -> Result<()> {
        for s in &self.slots {
            match s {
                Slot::Vector(v) => v.ensure_on_devices()?,
                Slot::Matrix(m) => m.ensure_on_devices()?,
                Slot::Scalar(_) => {}
            }
        }
        Ok(())
    }

    /// Resolve all slots for the executing device.
    pub(crate) fn resolve(&self, device: usize) -> Result<ResolvedArgs> {
        let mut slots = Vec::with_capacity(self.slots.len());
        for s in &self.slots {
            slots.push(match s {
                Slot::Scalar(sc) => ResolvedSlot::Scalar(Arc::clone(sc)),
                Slot::Vector(v) => {
                    let (buf, len) = v.resolve(device)?;
                    ResolvedSlot::Buffer {
                        buf: buf.into(),
                        len,
                        type_name: v.type_name(),
                    }
                }
                Slot::Matrix(m) => {
                    let (buf, meta) = m.resolve(device)?;
                    ResolvedSlot::Matrix {
                        buf: buf.into(),
                        meta,
                        type_name: m.type_name(),
                    }
                }
            });
        }
        Ok(ResolvedArgs { slots })
    }
}

impl std::fmt::Debug for Arguments {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Arguments[{} slots]", self.slots.len())
    }
}

pub(crate) enum ResolvedSlot {
    Scalar(Arc<dyn AnyScalarArg>),
    Buffer {
        buf: Arc<dyn Any + Send + Sync>,
        len: usize,
        type_name: &'static str,
    },
    Matrix {
        buf: Arc<dyn Any + Send + Sync>,
        meta: MatrixArgMeta,
        type_name: &'static str,
    },
}

/// The per-device view of an [`Arguments`] object, held by kernel bodies.
pub(crate) struct ResolvedArgs {
    slots: Vec<ResolvedSlot>,
}

/// What a customizing function sees besides its element input: the extra
/// arguments plus counted access to the executing work-item.
pub struct KernelEnv<'a> {
    pub(crate) item: &'a Item<'a>,
    pub(crate) args: &'a ResolvedArgs,
}

impl<'a> KernelEnv<'a> {
    /// The scalar argument at `idx`. Panics on index or type mismatch —
    /// the same failure mode as mismatched `clSetKernelArg` calls.
    pub fn scalar<T: Scalar>(&self, idx: usize) -> T {
        match self.args.slots.get(idx) {
            Some(ResolvedSlot::Scalar(s)) => *s.as_any().downcast_ref::<T>().unwrap_or_else(|| {
                panic!(
                    "argument {idx} is a {} scalar, requested {}",
                    s.type_name(),
                    T::TYPE_NAME
                )
            }),
            Some(ResolvedSlot::Buffer { type_name, .. }) => {
                panic!("argument {idx} is a {type_name} vector, requested scalar")
            }
            Some(ResolvedSlot::Matrix { type_name, .. }) => {
                panic!("argument {idx} is a {type_name} matrix, requested scalar")
            }
            None => panic!("argument index {idx} out of range"),
        }
    }

    /// The vector argument at `idx`, as a counted device-local view.
    pub fn vec<T: Scalar>(&self, idx: usize) -> ArgVec<'_, T> {
        match self.args.slots.get(idx) {
            Some(ResolvedSlot::Buffer {
                buf,
                len,
                type_name,
            }) => {
                let buffer = buf.downcast_ref::<Buffer<T>>().unwrap_or_else(|| {
                    panic!(
                        "argument {idx} is a {type_name} vector, requested {}",
                        T::TYPE_NAME
                    )
                });
                ArgVec {
                    buf: buffer,
                    len: *len,
                    item: self.item,
                }
            }
            Some(ResolvedSlot::Scalar(s)) => {
                panic!(
                    "argument {idx} is a {} scalar, requested vector",
                    s.type_name()
                )
            }
            Some(ResolvedSlot::Matrix { type_name, .. }) => {
                panic!("argument {idx} is a {type_name} matrix, requested vector")
            }
            None => panic!("argument index {idx} out of range"),
        }
    }

    /// The matrix argument at `idx`, as a counted device-local 2D view
    /// addressed by *global* `(row, col)`. Under `RowBlock` only this
    /// device's owned-plus-halo rows are addressable; out-of-span access
    /// panics, the 2D analogue of a Block vector argument's local part.
    pub fn mat<T: Scalar>(&self, idx: usize) -> ArgMat<'_, T> {
        match self.args.slots.get(idx) {
            Some(ResolvedSlot::Matrix {
                buf,
                meta,
                type_name,
            }) => {
                let buffer = buf.downcast_ref::<Buffer<T>>().unwrap_or_else(|| {
                    panic!(
                        "argument {idx} is a {type_name} matrix, requested {}",
                        T::TYPE_NAME
                    )
                });
                ArgMat {
                    buf: buffer,
                    meta: *meta,
                    item: self.item,
                }
            }
            Some(ResolvedSlot::Scalar(s)) => {
                panic!(
                    "argument {idx} is a {} scalar, requested matrix",
                    s.type_name()
                )
            }
            Some(ResolvedSlot::Buffer { type_name, .. }) => {
                panic!("argument {idx} is a {type_name} vector, requested matrix")
            }
            None => panic!("argument index {idx} out of range"),
        }
    }

    /// Report dynamic arithmetic work (equivalent to [`crate::work`] but
    /// charged directly to the item, bypassing the meter).
    pub fn work(&self, ops: u64) {
        self.item.work(ops);
    }

    /// Charge extra read traffic for uncoalesced access (full memory
    /// segments; see [`vgpu::Item::traffic_read`]).
    pub fn traffic_read(&self, bytes: usize) {
        self.item.traffic_read(bytes);
    }

    /// Charge extra write traffic for uncoalesced access.
    pub fn traffic_write(&self, bytes: usize) {
        self.item.traffic_write(bytes);
    }

    /// The executing work-item (IDs etc.).
    pub fn item(&self) -> &Item<'a> {
        self.item
    }
}

/// Device-local view of a vector argument with traffic-counted access.
pub struct ArgVec<'a, T: Scalar> {
    buf: &'a Buffer<T>,
    len: usize,
    item: &'a Item<'a>,
}

impl<'a, T: Scalar> ArgVec<'a, T> {
    /// The *device-local* length (a Block-distributed argument exposes just
    /// this device's part).
    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Counted load.
    #[inline]
    pub fn get(&self, i: usize) -> T {
        self.item.read(self.buf, i)
    }

    /// Counted store.
    #[inline]
    pub fn set(&self, i: usize, v: T) {
        self.item.write(self.buf, i, v)
    }
}

impl<'a> ArgVec<'a, f32> {
    /// Counted atomic add — the operation the paper's OSEM kernel uses to
    /// accumulate the error image.
    #[inline]
    pub fn atomic_add(&self, i: usize, v: f32) {
        self.item.atomic_add_f32(self.buf, i, v);
    }
}

impl<'a> ArgVec<'a, u32> {
    /// Counted atomic add; returns the previous value.
    #[inline]
    pub fn atomic_add(&self, i: usize, v: u32) -> u32 {
        self.item.atomic_add_u32(self.buf, i, v)
    }
}

/// Device-local 2D view of a matrix argument with traffic-counted access.
pub struct ArgMat<'a, T: Scalar> {
    buf: &'a Buffer<T>,
    meta: MatrixArgMeta,
    item: &'a Item<'a>,
}

impl<'a, T: Scalar> ArgMat<'a, T> {
    /// Matrix width.
    pub fn cols(&self) -> usize {
        self.meta.cols
    }

    /// Matrix height (global).
    pub fn rows(&self) -> usize {
        self.meta.n_rows
    }

    /// Rows addressable on this device (owned + halos).
    pub fn span_rows(&self) -> usize {
        self.meta.span_rows
    }

    /// Columns addressable on this device (the full width for row-based
    /// distributions, this part's column block under `ColBlock`).
    pub fn span_cols(&self) -> usize {
        self.meta.span_cols
    }

    /// First addressable column on this device.
    pub fn col_offset(&self) -> usize {
        self.meta.col_offset
    }

    fn span_index(&self, row: usize, col: usize) -> usize {
        assert!(
            col < self.meta.cols,
            "matrix argument column {col} out of range"
        );
        assert!(
            row < self.meta.n_rows,
            "matrix argument row {row} out of range"
        );
        // Columns are addressed globally; only this part's column block is
        // resident — the column analogue of the span-row check below.
        let lc = col.wrapping_sub(self.meta.col_offset);
        assert!(
            lc < self.meta.span_cols,
            "matrix argument column {col} not on this device (cols {}..{})",
            self.meta.col_offset,
            self.meta.col_offset + self.meta.span_cols
        );
        // Span rows hold consecutive global rows (mod n_rows) starting
        // `halo_above` above `row_offset`.
        let n = self.meta.n_rows;
        let first = (self.meta.row_offset + n - self.meta.halo_above.min(n)) % n;
        let s = (row + n - first) % n;
        assert!(
            s < self.meta.span_rows,
            "matrix argument row {row} not on this device (span {} rows from {first})",
            self.meta.span_rows
        );
        s * self.meta.span_cols + lc
    }

    /// Counted load at global `(row, col)`.
    #[inline]
    pub fn get(&self, row: usize, col: usize) -> T {
        self.item.read(self.buf, self.span_index(row, col))
    }

    /// Counted store at global `(row, col)`.
    #[inline]
    pub fn set(&self, row: usize, col: usize, v: T) {
        self.item.write(self.buf, self.span_index(row, col), v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::{Context, ContextConfig};
    use crate::vector::Distribution;

    fn ctx(n: usize) -> Context {
        Context::new(
            ContextConfig::default()
                .devices(n)
                .spec(vgpu::DeviceSpec::tiny())
                .cache_tag("skelcl-args-tests"),
        )
    }

    #[test]
    fn push_preserves_order_and_kinds() {
        let c = ctx(1);
        let v = Vector::from_vec(&c, vec![1.0f32, 2.0]);
        let mut args = Arguments::new();
        args.push(5u32).push(&v).push(2.5f32);
        assert_eq!(args.len(), 3);
        let resolved = args.resolve(0).unwrap();
        assert!(matches!(resolved.slots[0], ResolvedSlot::Scalar(_)));
        assert!(matches!(resolved.slots[1], ResolvedSlot::Buffer { .. }));
        assert!(matches!(resolved.slots[2], ResolvedSlot::Scalar(_)));
    }

    #[test]
    fn block_vector_argument_resolves_to_local_part() {
        let c = ctx(2);
        let v = Vector::from_vec(&c, (0..10).map(|i| i as f32).collect());
        v.set_distribution(Distribution::Block).unwrap();
        let mut args = Arguments::new();
        args.push(&v);
        args.ensure_on_devices().unwrap();
        let r0 = args.resolve(0).unwrap();
        let r1 = args.resolve(1).unwrap();
        match (&r0.slots[0], &r1.slots[0]) {
            (ResolvedSlot::Buffer { len: l0, .. }, ResolvedSlot::Buffer { len: l1, .. }) => {
                assert_eq!(*l0, 5);
                assert_eq!(*l1, 5);
            }
            _ => panic!("expected buffers"),
        }
    }

    #[test]
    fn single_vector_argument_fails_on_other_devices() {
        let c = ctx(2);
        let v = Vector::from_vec(&c, vec![1.0f32; 4]);
        v.set_distribution(Distribution::Single(0)).unwrap();
        let mut args = Arguments::new();
        args.push(&v);
        args.ensure_on_devices().unwrap();
        assert!(args.resolve(0).is_ok());
        assert!(args.resolve(1).is_err());
    }

    #[test]
    fn matrix_argument_resolves_to_local_span() {
        let c = ctx(2);
        let m = Matrix::from_fn(&c, 6, 4, |r, c| (r * 10 + c) as f32);
        m.set_distribution(crate::MatrixDistribution::RowBlock { halo: 1 })
            .unwrap();
        let mut args = Arguments::new();
        args.push(&m);
        args.ensure_on_devices().unwrap();
        for d in 0..2 {
            let r = args.resolve(d).unwrap();
            match &r.slots[0] {
                ResolvedSlot::Matrix { meta, .. } => {
                    assert_eq!(meta.cols, 4);
                    assert_eq!(meta.n_rows, 6);
                    assert_eq!(meta.span_rows, 5, "3 owned + halo above/below");
                }
                _ => panic!("expected matrix slot"),
            }
        }
    }

    #[test]
    fn matrix_argument_is_readable_from_a_kernel() {
        // A Copy-distributed lookup table addressed by global (row, col)
        // from a Map kernel — the 2D analogue of the vector gather test.
        let c = ctx(2);
        let table = Matrix::from_fn(&c, 4, 4, |r, col| (r * 4 + col) as f32);
        table
            .set_distribution(crate::MatrixDistribution::Copy)
            .unwrap();
        let gather = crate::UserFn::new(
            "gather2d",
            "float gather2d(uint i, __global float* t, uint cols) { return t[(i/4)*cols + i%4]; }",
            |i: u32, env: &KernelEnv<'_>| {
                let t = env.mat::<f32>(0);
                t.get(i as usize / 4, i as usize % 4)
            },
        );
        let m = crate::MapArgs::new(gather, 1);
        let idx = crate::Vector::from_vec(&c, (0..16u32).rev().collect());
        let mut args = Arguments::new();
        args.push(&table);
        let out = m.apply(&idx, &args).unwrap();
        let want: Vec<f32> = (0..16).rev().map(|i| i as f32).collect();
        assert_eq!(out.to_vec().unwrap(), want);
    }

    #[test]
    fn copy_vector_argument_resolves_everywhere() {
        let c = ctx(3);
        let v = Vector::from_vec(&c, vec![7u32; 6]);
        v.set_distribution(Distribution::Copy).unwrap();
        let mut args = Arguments::new();
        args.push(&v);
        args.ensure_on_devices().unwrap();
        for d in 0..3 {
            let r = args.resolve(d).unwrap();
            match &r.slots[0] {
                ResolvedSlot::Buffer { len, .. } => assert_eq!(*len, 6),
                _ => panic!("expected buffer"),
            }
        }
    }
}
