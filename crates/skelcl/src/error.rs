//! SkelCL-level errors.

use std::fmt;

/// Errors surfaced by the skeleton library.
#[derive(Debug)]
pub enum Error {
    /// The underlying virtual platform failed.
    Platform(vgpu::Error),
    /// Zip inputs (or a Zip-like combine) have different lengths.
    LengthMismatch { left: usize, right: usize },
    /// Matrix operands have different shapes (`(rows, cols)`).
    ShapeMismatch {
        left: (usize, usize),
        right: (usize, usize),
    },
    /// AllPairs-style inner dimensions disagree: `A` is `m×k`, so `B` must
    /// be `k×n`.
    InnerDimMismatch {
        left: (usize, usize),
        right: (usize, usize),
    },
    /// An operation needed a device-side copy that does not exist.
    NotOnDevice(String),
    /// An `Arguments` slot was accessed with the wrong type or index.
    BadArgument(String),
    /// A distribution change is not meaningful (e.g. block-merge from a
    /// non-Copy distribution).
    BadDistribution(String),
    /// An empty vector was passed to a skeleton requiring data (Reduce).
    Empty(&'static str),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Platform(e) => write!(f, "platform error: {e}"),
            Error::LengthMismatch { left, right } => {
                write!(f, "length mismatch: {left} vs {right}")
            }
            Error::ShapeMismatch { left, right } => {
                write!(
                    f,
                    "shape mismatch: {}x{} vs {}x{}",
                    left.0, left.1, right.0, right.1
                )
            }
            Error::InnerDimMismatch { left, right } => {
                write!(
                    f,
                    "inner dimension mismatch: {}x{} · {}x{} (A columns must equal B rows)",
                    left.0, left.1, right.0, right.1
                )
            }
            Error::NotOnDevice(msg) => write!(f, "not on device: {msg}"),
            Error::BadArgument(msg) => write!(f, "bad argument: {msg}"),
            Error::BadDistribution(msg) => write!(f, "bad distribution: {msg}"),
            Error::Empty(op) => write!(f, "{op} requires a non-empty vector"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Platform(e) => Some(e),
            _ => None,
        }
    }
}

impl From<vgpu::Error> for Error {
    fn from(e: vgpu::Error) -> Self {
        Error::Platform(e)
    }
}

pub type Result<T> = std::result::Result<T, Error>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn platform_errors_convert() {
        let e: Error = vgpu::Error::SizeMismatch {
            expected: 1,
            actual: 2,
        }
        .into();
        assert!(matches!(e, Error::Platform(_)));
        assert!(e.to_string().contains("size mismatch"));
        assert!(std::error::Error::source(&e).is_some());
    }

    #[test]
    fn display_variants() {
        assert!(Error::LengthMismatch { left: 3, right: 4 }
            .to_string()
            .contains("3 vs 4"));
        assert!(Error::Empty("reduce").to_string().contains("reduce"));
    }
}
