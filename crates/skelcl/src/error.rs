//! SkelCL-level errors.

use std::fmt;

/// Errors surfaced by the skeleton library.
#[derive(Debug)]
pub enum Error {
    /// The underlying virtual platform failed.
    Platform(vgpu::Error),
    /// Zip inputs (or a Zip-like combine) have different lengths.
    LengthMismatch { left: usize, right: usize },
    /// Matrix operands have different shapes (`(rows, cols)`).
    ShapeMismatch {
        left: (usize, usize),
        right: (usize, usize),
    },
    /// AllPairs-style inner dimensions disagree: `A` is `m×k`, so `B` must
    /// be `k×n`.
    InnerDimMismatch {
        left: (usize, usize),
        right: (usize, usize),
    },
    /// An operation needed a device-side copy that does not exist.
    NotOnDevice(String),
    /// An `Arguments` slot was accessed with the wrong type or index.
    BadArgument(String),
    /// A kernel body requested an argument slot that does not match what
    /// the host marshalled (wrong index, wrong type, or wrong buffer
    /// element) — the launch fails with the original mismatch message
    /// instead of unwinding through the device pool.
    KernelArgMismatch(String),
    /// A distribution change is not meaningful (e.g. block-merge from a
    /// non-Copy distribution).
    BadDistribution(String),
    /// An empty vector was passed to a skeleton requiring data (Reduce).
    Empty(&'static str),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Platform(e) => write!(f, "platform error: {e}"),
            Error::LengthMismatch { left, right } => {
                write!(f, "length mismatch: {left} vs {right}")
            }
            Error::ShapeMismatch { left, right } => {
                write!(
                    f,
                    "shape mismatch: {}x{} vs {}x{}",
                    left.0, left.1, right.0, right.1
                )
            }
            Error::InnerDimMismatch { left, right } => {
                write!(
                    f,
                    "inner dimension mismatch: {}x{} · {}x{} (A columns must equal B rows)",
                    left.0, left.1, right.0, right.1
                )
            }
            Error::NotOnDevice(msg) => write!(f, "not on device: {msg}"),
            Error::BadArgument(msg) => write!(f, "bad argument: {msg}"),
            Error::KernelArgMismatch(msg) => {
                write!(f, "kernel/host argument mismatch: {msg}")
            }
            Error::BadDistribution(msg) => write!(f, "bad distribution: {msg}"),
            Error::Empty(op) => write!(f, "{op} requires a non-empty vector"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Platform(e) => Some(e),
            _ => None,
        }
    }
}

impl From<vgpu::Error> for Error {
    fn from(e: vgpu::Error) -> Self {
        match e {
            // Argument-marshalling mistakes surface as kernel panics whose
            // message names the offending argument slot; give them their
            // own typed variant so callers can match on them.
            vgpu::Error::KernelPanic(msg) if msg.contains("argument") => {
                Error::KernelArgMismatch(msg)
            }
            other => Error::Platform(other),
        }
    }
}

pub type Result<T> = std::result::Result<T, Error>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn platform_errors_convert() {
        let e: Error = vgpu::Error::SizeMismatch {
            expected: 1,
            actual: 2,
        }
        .into();
        assert!(matches!(e, Error::Platform(_)));
        assert!(e.to_string().contains("size mismatch"));
        assert!(std::error::Error::source(&e).is_some());
    }

    #[test]
    fn kernel_panics_about_arguments_become_typed_mismatches() {
        let e: Error =
            vgpu::Error::KernelPanic("argument 2 is a f32 scalar, requested u32".into()).into();
        assert!(matches!(e, Error::KernelArgMismatch(_)));
        assert!(e.to_string().contains("argument 2"));
        // Other kernel panics stay platform errors.
        let e: Error = vgpu::Error::KernelPanic("index out of bounds".into()).into();
        assert!(matches!(e, Error::Platform(_)));
    }

    #[test]
    fn display_variants() {
        assert!(Error::LengthMismatch { left: 3, right: 4 }
            .to_string()
            .contains("3 vs 4"));
        assert!(Error::Empty("reduce").to_string().contains("reduce"));
    }
}
