//! The abstract vector: unified host/device memory with lazy transfers and
//! multi-device distributions.
//!
//! Paper, Section III-A: *"SkelCL offers the `Vector` class providing a
//! unified abstraction for a contiguous memory area that is accessible by
//! both, CPU and GPU. [...] Data transfer between these corresponding memory
//! areas is performed implicitly [...] Before every data transfer, the
//! vector implementation checks whether the data transfer is necessary; only
//! then the data is actually transferred. [...] This lazy copying minimizes
//! costly data transfers between host and device."*
//!
//! Section III-D adds the multi-GPU story: a vector is "either completely
//! copied to every device, or evenly divided into one part per device", the
//! user can change a vector's distribution at any time, and "data exchange
//! between multiple devices is performed automatically by SkelCL" — including
//! redistribution *with a combine operator*, which the OSEM case study uses
//! to merge per-GPU error images.

use crate::codegen::{self, UserFn};
use crate::context::Context;
use crate::error::{Error, Result};
use crate::meter;
use parking_lot::{MappedMutexGuard, Mutex, MutexGuard};
use std::sync::Arc;
use vgpu::{Buffer, Event, KernelBody, NDRange, Scalar};

/// How a vector's data is laid out across the context's devices
/// (paper Section III-D).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Distribution {
    /// The whole vector lives on one device.
    Single(usize),
    /// Every device holds a full copy.
    Copy,
    /// The vector is evenly divided into one contiguous part per device.
    Block,
}

/// One device-resident piece of a vector.
#[derive(Clone)]
pub(crate) struct DevicePart<T: Scalar> {
    pub device: usize,
    pub offset: usize,
    pub len: usize,
    pub buffer: Buffer<T>,
}

/// One chunk of a streamed part upload: elements
/// `[start, start + len)` of the part's buffer hold valid data once
/// `event` completes on the device's copy engine (the vector twin of the
/// matrix `UploadChunk`).
#[derive(Clone)]
pub(crate) struct VecUploadChunk {
    pub start: usize,
    pub len: usize,
    pub event: Event,
}

/// Device parts plus their per-part streamed-upload chunk events.
pub(crate) type PartsWithChunks<T> = (Vec<DevicePart<T>>, Vec<Vec<VecUploadChunk>>);

struct State<T: Scalar> {
    host: Vec<T>,
    /// Host copy reflects the newest data.
    host_fresh: bool,
    /// Device copies (under `dist`) reflect the newest data.
    device_fresh: bool,
    dist: Distribution,
    parts: Vec<DevicePart<T>>,
    /// Per part: the chunk events of a streamed upload (empty for blocking
    /// uploads and device-born vectors).
    upload_chunks: Vec<Vec<VecUploadChunk>>,
    /// The platform clock epoch the chunks were recorded under (see the
    /// matrix twin: a `reset_clocks` invalidates recorded events).
    upload_epoch: u64,
}

/// The SkelCL vector. Cloning yields a second handle to the same vector
/// (C++ SkelCL passes vectors by reference).
pub struct Vector<T: Scalar> {
    ctx: Context,
    state: Arc<Mutex<State<T>>>,
}

impl<T: Scalar> Clone for Vector<T> {
    fn clone(&self) -> Self {
        Vector {
            ctx: self.ctx.clone(),
            state: Arc::clone(&self.state),
        }
    }
}

impl<T: Scalar> std::fmt::Debug for Vector<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let st = self.state.lock();
        f.debug_struct("Vector")
            .field("len", &st.host.len())
            .field("dist", &st.dist)
            .field("host_fresh", &st.host_fresh)
            .field("device_fresh", &st.device_fresh)
            .finish()
    }
}

/// Contiguous near-equal block ranges of `len` over `n` devices.
pub(crate) fn block_ranges(len: usize, n: usize) -> Vec<(usize, usize)> {
    let n = n.max(1);
    let base = len / n;
    let extra = len % n;
    let mut out = Vec::with_capacity(n);
    let mut off = 0;
    for d in 0..n {
        let l = base + usize::from(d < extra);
        out.push((off, l));
        off += l;
    }
    out
}

fn default_distribution(ctx: &Context) -> Distribution {
    if ctx.n_devices() == 1 {
        Distribution::Single(0)
    } else {
        Distribution::Block
    }
}

/// Layout of `dist` for a vector of `len` elements: `(device, offset, len)`.
fn layout(dist: Distribution, len: usize, n_devices: usize) -> Vec<(usize, usize, usize)> {
    match dist {
        Distribution::Single(d) => vec![(d, 0, len)],
        Distribution::Copy => (0..n_devices).map(|d| (d, 0, len)).collect(),
        Distribution::Block => block_ranges(len, n_devices)
            .into_iter()
            .enumerate()
            .map(|(d, (off, l))| (d, off, l))
            .collect(),
    }
}

impl<T: Scalar> Vector<T> {
    /// Create a vector from host data (the paper's
    /// `Vector<float> A(a_ptr, ARRAY_SIZE)`); no device transfer happens
    /// until a skeleton needs the data.
    pub fn from_vec(ctx: &Context, data: Vec<T>) -> Self {
        let dist = default_distribution(ctx);
        Vector {
            ctx: ctx.clone(),
            state: Arc::new(Mutex::new(State {
                host: data,
                host_fresh: true,
                device_fresh: false,
                dist,
                parts: Vec::new(),
                upload_chunks: Vec::new(),
                upload_epoch: 0,
            })),
        }
    }

    pub fn from_slice(ctx: &Context, data: &[T]) -> Self {
        Vector::from_vec(ctx, data.to_vec())
    }

    /// A vector of `len` default-initialised elements.
    pub fn zeroed(ctx: &Context, len: usize) -> Self {
        Vector::from_vec(ctx, vec![T::default(); len])
    }

    pub fn ctx(&self) -> &Context {
        &self.ctx
    }

    pub fn len(&self) -> usize {
        self.state.lock().host.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn distribution(&self) -> Distribution {
        self.state.lock().dist
    }

    /// Is the host copy current? (test/introspection aid)
    pub fn host_fresh(&self) -> bool {
        self.state.lock().host_fresh
    }

    /// Are the device copies current? (test/introspection aid)
    pub fn device_fresh(&self) -> bool {
        self.state.lock().device_fresh
    }

    /// Read access to the host data, downloading first only if the device
    /// copies are newer (lazy copying).
    pub fn host_view(&self) -> Result<MappedMutexGuard<'_, [T]>> {
        let mut st = self.state.lock();
        ensure_on_host(&self.ctx, &mut st)?;
        Ok(MutexGuard::map(st, |s| s.host.as_mut_slice()))
    }

    /// Mutable access to the host data; marks the device copies stale.
    pub fn host_view_mut(&self) -> Result<MappedMutexGuard<'_, [T]>> {
        let mut st = self.state.lock();
        ensure_on_host(&self.ctx, &mut st)?;
        st.host_fresh = true;
        st.device_fresh = false;
        st.parts.clear();
        st.upload_chunks.clear();
        Ok(MutexGuard::map(st, |s| s.host.as_mut_slice()))
    }

    /// Copy the current contents out to a `Vec` (downloads if needed).
    pub fn to_vec(&self) -> Result<Vec<T>> {
        let mut st = self.state.lock();
        ensure_on_host(&self.ctx, &mut st)?;
        Ok(st.host.clone())
    }

    /// Copy the current contents out like [`Vector::to_vec`], but **without
    /// blocking the virtual host clock**: each part is downloaded by an
    /// asynchronous read on the device's copy stream, ordered after
    /// everything already scheduled on that device by a marker. Returns the
    /// data plus the virtual time at which the last read completes — the
    /// moment the response is ready. Coherence state is untouched; see
    /// [`Matrix::read_back_async`](crate::Matrix::read_back_async) for the
    /// serving rationale.
    pub fn read_back_async(&self) -> Result<(Vec<T>, f64)> {
        let st = self.state.lock();
        if st.host_fresh {
            return Ok((st.host.clone(), self.ctx.host_now_s()));
        }
        assert!(
            st.device_fresh,
            "vector has neither fresh host nor fresh device data"
        );
        let mut out = vec![T::default(); st.host.len()];
        let mut ready = self.ctx.host_now_s();
        match st.dist {
            Distribution::Single(_) | Distribution::Copy => {
                let part = st
                    .parts
                    .first()
                    .ok_or_else(|| Error::NotOnDevice("no device parts to download".into()))?;
                if part.len > 0 {
                    let q = self.ctx.copy_queue(part.device);
                    let dep = [q.enqueue_marker()];
                    let ev = q.enqueue_read_range_async(&part.buffer, 0, &mut out, 1, &dep)?;
                    ready = ready.max(ev.end_s);
                }
            }
            Distribution::Block => {
                let concurrent = st.parts.iter().filter(|p| p.len > 0).count().max(1);
                for p in &st.parts {
                    if p.len == 0 {
                        continue;
                    }
                    let q = self.ctx.copy_queue(p.device);
                    let dep = [q.enqueue_marker()];
                    let ev = q.enqueue_read_range_async(
                        &p.buffer,
                        0,
                        &mut out[p.offset..p.offset + p.len],
                        concurrent,
                        &dep,
                    )?;
                    ready = ready.max(ev.end_s);
                }
            }
        }
        Ok((out, ready))
    }

    /// Declare that a kernel modified this vector on the devices by side
    /// effect (the paper's `dataOnDevicesModified()`, needed after the OSEM
    /// error-image kernel which "produces no result, but updates the error
    /// image by side-effect").
    pub fn mark_devices_modified(&self) {
        let mut st = self.state.lock();
        assert!(
            !st.parts.is_empty(),
            "mark_devices_modified on a vector that was never uploaded"
        );
        st.device_fresh = true;
        st.host_fresh = false;
        // The kernel's writes supersede any still-recorded upload events.
        st.upload_chunks.clear();
    }

    /// Upload to the devices (per the current distribution) if the device
    /// copies are stale. Skeletons call this implicitly; it is public so
    /// applications can pre-stage data like the paper's OSEM loop does.
    pub fn ensure_on_devices(&self) -> Result<()> {
        let mut st = self.state.lock();
        ensure_on_devices(&self.ctx, &mut st)
    }

    /// Upload like [`Vector::ensure_on_devices`], but **streamed in chunks
    /// of (at most) `chunk_len` elements on the copy stream**, recording
    /// each chunk's event so a streamed skeleton pass
    /// ([`crate::Map::apply_streamed`]) launches per-chunk kernels that
    /// start while later chunks are still crossing PCIe. A no-op when the
    /// devices are already fresh; bit-identical data either way.
    pub fn ensure_on_devices_streamed(&self, chunk_len: usize) -> Result<()> {
        let mut st = self.state.lock();
        ensure_on_devices_streamed(&self.ctx, &mut st, chunk_len)
    }

    /// Change the distribution (paper's `setDistribution`). If the devices
    /// hold the newest data, the required inter-device exchange happens
    /// automatically; otherwise only metadata changes and the next upload
    /// uses the new layout.
    pub fn set_distribution(&self, dist: Distribution) -> Result<()> {
        if let Distribution::Single(d) = dist {
            if d >= self.ctx.n_devices() {
                return Err(Error::BadDistribution(format!(
                    "device {d} out of range ({} devices)",
                    self.ctx.n_devices()
                )));
            }
        }
        let mut st = self.state.lock();
        if st.dist == dist {
            return Ok(());
        }
        if !st.device_fresh {
            st.dist = dist;
            st.parts.clear();
            st.upload_chunks.clear();
            return Ok(());
        }
        redistribute(&self.ctx, &mut st, dist, None::<&UserFn<fn(T, T) -> T>>)
    }

    /// Change the distribution, merging diverged per-device copies with a
    /// binary operator (paper: `c.setDistribution(Distribution::block, add)`
    /// — "reduce (element-wise add) all copies of error image").
    ///
    /// Only meaningful from `Copy` with fresh device data; in every other
    /// state it behaves like [`Vector::set_distribution`].
    pub fn set_distribution_with<F>(&self, dist: Distribution, combine: &UserFn<F>) -> Result<()>
    where
        F: Fn(T, T) -> T + Send + Sync + Clone + 'static,
    {
        let mut st = self.state.lock();
        if st.device_fresh && st.dist == Distribution::Copy && st.dist != dist {
            redistribute(&self.ctx, &mut st, dist, Some(combine))
        } else if st.dist == dist {
            Ok(())
        } else if !st.device_fresh {
            st.dist = dist;
            st.parts.clear();
            st.upload_chunks.clear();
            Ok(())
        } else {
            redistribute(&self.ctx, &mut st, dist, None::<&UserFn<F>>)
        }
    }

    /// The device-resident parts (uploading first if needed).
    pub(crate) fn parts(&self) -> Result<Vec<DevicePart<T>>> {
        let mut st = self.state.lock();
        ensure_on_devices(&self.ctx, &mut st)?;
        Ok(st.parts.clone())
    }

    /// The device-resident parts with any pending streamed-upload chunk
    /// events, uploading *streamed* first if the devices are stale. Chunk
    /// lists are empty for blocking uploads and device-born parts.
    pub(crate) fn parts_with_upload_chunks(&self, chunk_len: usize) -> Result<PartsWithChunks<T>> {
        let mut st = self.state.lock();
        ensure_on_devices_streamed(&self.ctx, &mut st, chunk_len)?;
        let live = st.upload_chunks.len() == st.parts.len()
            && st.upload_epoch == self.ctx.platform().clock_epoch();
        let chunks = if live {
            st.upload_chunks.clone()
        } else {
            vec![Vec::new(); st.parts.len()]
        };
        Ok((st.parts.clone(), chunks))
    }

    /// Wrap one freshly computed device buffer as a `Single(device)`
    /// vector — the shape 2D-reduction outputs take when the whole result
    /// lands on one device (no host round trip; the host copy is stale
    /// until first read).
    pub(crate) fn from_single_device_part(
        ctx: &Context,
        device: usize,
        len: usize,
        buffer: Buffer<T>,
    ) -> Self {
        Vector::from_device_parts(
            ctx,
            len,
            Distribution::Single(device),
            vec![DevicePart {
                device,
                offset: 0,
                len,
                buffer,
            }],
        )
    }

    /// Wrap freshly computed device parts as a new vector (skeleton
    /// outputs): device data is fresh, host copy is stale.
    pub(crate) fn from_device_parts(
        ctx: &Context,
        len: usize,
        dist: Distribution,
        parts: Vec<DevicePart<T>>,
    ) -> Self {
        Vector {
            ctx: ctx.clone(),
            state: Arc::new(Mutex::new(State {
                host: vec![T::default(); len],
                host_fresh: false,
                device_fresh: true,
                dist,
                parts,
                upload_chunks: Vec::new(),
                upload_epoch: 0,
            })),
        }
    }
}

/// Upload `st.host` per `st.dist` if the device copies are stale.
fn ensure_on_devices<T: Scalar>(ctx: &Context, st: &mut State<T>) -> Result<()> {
    if st.device_fresh {
        return Ok(());
    }
    assert!(
        st.host_fresh,
        "vector has neither fresh host nor fresh device data"
    );
    let mut span = ctx.span("vector.upload");
    span.attr("len", st.host.len().to_string());
    span.attr("distribution", format!("{:?}", st.dist));
    span.attr("devices", ctx.n_devices().to_string());
    let lay = layout(st.dist, st.host.len(), ctx.n_devices());
    let concurrent = lay.iter().filter(|(_, _, l)| *l > 0).count().max(1);
    let mut parts = Vec::with_capacity(lay.len());
    for (d, off, len) in lay {
        let buffer = ctx.device(d).alloc::<T>(len)?;
        if len > 0 {
            ctx.queue(d)
                .enqueue_write_concurrent(&buffer, &st.host[off..off + len], concurrent)?;
        }
        parts.push(DevicePart {
            device: d,
            offset: off,
            len,
            buffer,
        });
    }
    st.parts = parts;
    st.upload_chunks.clear();
    st.device_fresh = true;
    Ok(())
}

/// Upload `st.host` like [`ensure_on_devices`], but streamed: each part
/// goes out in `chunk_len`-element asynchronous writes on the device's
/// copy stream, with the chunk events recorded in `st.upload_chunks`.
fn ensure_on_devices_streamed<T: Scalar>(
    ctx: &Context,
    st: &mut State<T>,
    chunk_len: usize,
) -> Result<()> {
    if st.device_fresh {
        return Ok(());
    }
    assert!(
        st.host_fresh,
        "vector has neither fresh host nor fresh device data"
    );
    let chunk_len = chunk_len.max(1);
    let mut span = ctx.span("vector.upload_streamed");
    span.attr("len", st.host.len().to_string());
    span.attr("distribution", format!("{:?}", st.dist));
    span.attr("chunk_len", chunk_len.to_string());
    span.attr("devices", ctx.n_devices().to_string());
    let lay = layout(st.dist, st.host.len(), ctx.n_devices());
    let concurrent = lay.iter().filter(|(_, _, l)| *l > 0).count().max(1);
    let mut parts = Vec::with_capacity(lay.len());
    let mut upload_chunks = Vec::with_capacity(lay.len());
    for (d, off, len) in lay {
        let buffer = ctx.device(d).alloc::<T>(len)?;
        let mut chunks = Vec::new();
        let queue = ctx.copy_queue(d);
        let mut done = 0;
        while done < len {
            let n = chunk_len.min(len - done);
            let event = queue.enqueue_write_range_async(
                &buffer,
                done,
                &st.host[off + done..off + done + n],
                concurrent,
                &[],
            )?;
            chunks.push(VecUploadChunk {
                start: done,
                len: n,
                event,
            });
            done += n;
        }
        parts.push(DevicePart {
            device: d,
            offset: off,
            len,
            buffer,
        });
        upload_chunks.push(chunks);
    }
    st.parts = parts;
    st.upload_chunks = upload_chunks;
    st.upload_epoch = ctx.platform().clock_epoch();
    st.device_fresh = true;
    Ok(())
}

/// Download into `st.host` if the host copy is stale.
fn ensure_on_host<T: Scalar>(ctx: &Context, st: &mut State<T>) -> Result<()> {
    if st.host_fresh {
        return Ok(());
    }
    assert!(
        st.device_fresh,
        "vector has neither fresh host nor fresh device data"
    );
    match st.dist {
        Distribution::Single(_) | Distribution::Copy => {
            let part = st
                .parts
                .first()
                .ok_or_else(|| Error::NotOnDevice("no device parts to download".into()))?;
            let mut tmp = vec![T::default(); part.len];
            ctx.queue(part.device)
                .enqueue_read_concurrent(&part.buffer, &mut tmp, 1, true)?;
            st.host = tmp;
        }
        Distribution::Block => {
            let concurrent = st.parts.iter().filter(|p| p.len > 0).count().max(1);
            let parts = st.parts.clone();
            for p in &parts {
                if p.len == 0 {
                    continue;
                }
                ctx.queue(p.device).enqueue_read_concurrent(
                    &p.buffer,
                    &mut st.host[p.offset..p.offset + p.len],
                    concurrent,
                    false,
                )?;
            }
            ctx.sync();
        }
    }
    st.host_fresh = true;
    Ok(())
}

/// Move device-fresh data from `st.dist`/`st.parts` into `new_dist`,
/// optionally merging Copy parts with `combine`.
fn redistribute<T: Scalar, F>(
    ctx: &Context,
    st: &mut State<T>,
    new_dist: Distribution,
    combine: Option<&UserFn<F>>,
) -> Result<()>
where
    F: Fn(T, T) -> T + Send + Sync + Clone + 'static,
{
    let len = st.host.len();
    let n = ctx.n_devices();
    let new_lay = layout(new_dist, len, n);

    // Allocate destination parts.
    let mut new_parts = Vec::with_capacity(new_lay.len());
    for (d, off, l) in &new_lay {
        new_parts.push(DevicePart {
            device: *d,
            offset: *off,
            len: *l,
            buffer: ctx.device(*d).alloc::<T>(*l)?,
        });
    }

    if let Some(f) = combine {
        merge_copy_to(ctx, st, &mut new_parts, f)?;
    } else {
        move_data(ctx, st, &new_parts)?;
    }

    st.parts = new_parts;
    st.upload_chunks.clear();
    st.dist = new_dist;
    Ok(())
}

/// Plain data movement old-parts → new-parts (no combining).
fn move_data<T: Scalar>(ctx: &Context, st: &State<T>, new_parts: &[DevicePart<T>]) -> Result<()> {
    // Contention hint: transfers chain per destination device, so at most
    // ~one per device is in flight at any instant.
    let mut cross = 0usize;
    for np in new_parts {
        if np.len == 0 {
            continue;
        }
        for op in source_copies(st, np) {
            if op.0 != np.device {
                cross += 1;
            }
        }
    }
    let concurrent = cross.min(ctx.n_devices()).max(1);

    for np in new_parts {
        if np.len == 0 {
            continue;
        }
        for (src_dev, src_buf, src_off, dst_off, l) in source_copies(st, np) {
            let _ = src_dev;
            ctx.platform()
                .copy_d2d_range(&src_buf, src_off, &np.buffer, dst_off, l, concurrent)?;
        }
    }
    ctx.sync();
    Ok(())
}

/// For a destination part, the copies needed to fill it from the old parts:
/// `(src_device, src_buffer, src_offset, dst_offset, len)`.
fn source_copies<T: Scalar>(
    st: &State<T>,
    np: &DevicePart<T>,
) -> Vec<(usize, Buffer<T>, usize, usize, usize)> {
    let mut out = Vec::new();
    let want = np.offset..np.offset + np.len;
    match st.dist {
        Distribution::Single(_) => {
            let op = &st.parts[0];
            out.push((
                op.device,
                op.buffer.clone(),
                want.start - op.offset,
                0,
                np.len,
            ));
        }
        Distribution::Copy => {
            // Prefer the copy already on the destination device.
            let op = st
                .parts
                .iter()
                .find(|p| p.device == np.device)
                .unwrap_or(&st.parts[0]);
            out.push((op.device, op.buffer.clone(), want.start, 0, np.len));
        }
        Distribution::Block => {
            for op in &st.parts {
                let lo = want.start.max(op.offset);
                let hi = want.end.min(op.offset + op.len);
                if lo < hi {
                    out.push((
                        op.device,
                        op.buffer.clone(),
                        lo - op.offset,
                        lo - np.offset,
                        hi - lo,
                    ));
                }
            }
        }
    }
    out
}

/// Copy→(target) with element-wise combining of the diverged per-device
/// copies (the OSEM error-image merge).
fn merge_copy_to<T: Scalar, F>(
    ctx: &Context,
    st: &State<T>,
    new_parts: &mut [DevicePart<T>],
    combine: &UserFn<F>,
) -> Result<()>
where
    F: Fn(T, T) -> T + Send + Sync + Clone + 'static,
{
    // Each destination folds its sources sequentially; ~n_devices
    // transfers are in flight at once.
    let n = ctx.n_devices();
    let cross = n.max(1);

    let program = codegen::zip_program(
        combine.name(),
        combine.source(),
        T::TYPE_NAME,
        T::TYPE_NAME,
        T::TYPE_NAME,
        0,
    );
    let compiled = ctx.get_or_build(&program)?;
    let static_ops = combine.static_ops();

    for np in new_parts.iter_mut() {
        if np.len == 0 {
            continue;
        }
        // Seed with the destination device's own copy (device-local).
        let own = st
            .parts
            .iter()
            .find(|p| p.device == np.device)
            .ok_or_else(|| Error::NotOnDevice("copy distribution missing a device".into()))?;
        ctx.platform()
            .copy_on_device(&own.buffer, np.offset, &np.buffer, 0, np.len)?;

        // Fold in every other device's copy of this range.
        for op in st.parts.iter().filter(|p| p.device != np.device) {
            let tmp = ctx.device(np.device).alloc::<T>(np.len)?;
            ctx.platform()
                .copy_d2d_range(&op.buffer, np.offset, &tmp, 0, np.len, cross)?;

            let f = combine.func().clone();
            let dst = np.buffer.clone();
            let src = tmp.clone();
            let body: KernelBody = Arc::new(move |wg| {
                wg.for_each_item(|it| {
                    if !it.in_bounds() {
                        return;
                    }
                    let i = it.global_id(0);
                    let a = it.read(&dst, i);
                    let b = it.read(&src, i);
                    let (r, dyn_ops) = meter::metered(|| f(a, b));
                    it.write(&dst, i, r);
                    it.work(static_ops + dyn_ops);
                });
            });
            let kernel = compiled.with_body(body);
            ctx.queue(np.device).launch(
                &kernel,
                NDRange::linear(np.len, ctx.work_group().min(np.len)),
            )?;
        }
    }
    ctx.sync();
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::ContextConfig;

    fn ctx(n: usize) -> Context {
        Context::new(
            ContextConfig::default()
                .devices(n)
                .spec(vgpu::DeviceSpec::tiny())
                .cache_tag("skelcl-vector-tests"),
        )
    }

    fn data(n: usize) -> Vec<f32> {
        (0..n).map(|i| i as f32).collect()
    }

    #[test]
    fn block_ranges_cover_exactly() {
        for (len, n) in [(10, 3), (0, 4), (7, 8), (100, 4)] {
            let r = block_ranges(len, n);
            assert_eq!(r.len(), n);
            let mut off = 0;
            for (o, l) in r {
                assert_eq!(o, off);
                off += l;
            }
            assert_eq!(off, len);
        }
    }

    #[test]
    fn creation_is_lazy_no_transfer() {
        let c = ctx(2);
        let before = c.platform().stats_snapshot();
        let v = Vector::from_vec(&c, data(100));
        assert_eq!(v.len(), 100);
        assert!(!v.device_fresh());
        let delta = c.platform().stats_snapshot() - before;
        assert_eq!(delta.total_transfers(), 0, "creation must not transfer");
    }

    #[test]
    fn read_back_async_matches_to_vec_without_host_sync() {
        for (dist, devices) in [
            (Distribution::Block, 3),
            (Distribution::Copy, 2),
            (Distribution::Single(1), 2),
        ] {
            let c = ctx(devices);
            let v = Vector::from_vec(&c, data(40));
            v.set_distribution(dist).unwrap();
            v.ensure_on_devices().unwrap();
            v.mark_devices_modified(); // devices are the truth now
            let host_before = c.host_now_s();
            let (got, ready) = v.read_back_async().unwrap();
            assert_eq!(
                c.host_now_s(),
                host_before,
                "async read-back must not advance the host clock ({dist:?})"
            );
            assert!(ready >= host_before, "{dist:?}");
            assert!(!v.host_fresh(), "coherence state must be untouched");
            assert_eq!(got, data(40), "{dist:?}");
        }
    }

    #[test]
    fn ensure_on_devices_uploads_once() {
        let c = ctx(2);
        let v = Vector::from_vec(&c, data(100));
        let before = c.platform().stats_snapshot();
        v.ensure_on_devices().unwrap();
        let mid = c.platform().stats_snapshot();
        assert_eq!((mid - before).h2d_transfers, 2, "one upload per block part");
        v.ensure_on_devices().unwrap();
        let delta = c.platform().stats_snapshot() - mid;
        assert_eq!(delta.total_transfers(), 0, "second ensure must be lazy");
    }

    #[test]
    fn roundtrip_through_block_distribution() {
        let c = ctx(3);
        let v = Vector::from_vec(&c, data(101));
        v.ensure_on_devices().unwrap();
        // Pretend the host copy is stale, then lazily download.
        v.mark_devices_modified();
        assert!(!v.host_fresh());
        assert_eq!(v.to_vec().unwrap(), data(101));
        assert!(v.host_fresh());
    }

    #[test]
    fn host_view_mut_invalidates_device_copies() {
        let c = ctx(2);
        let v = Vector::from_vec(&c, data(10));
        v.ensure_on_devices().unwrap();
        assert!(v.device_fresh());
        v.host_view_mut().unwrap()[0] = 99.0;
        assert!(!v.device_fresh());
        assert_eq!(v.to_vec().unwrap()[0], 99.0);
    }

    #[test]
    fn set_distribution_without_device_data_is_metadata_only() {
        let c = ctx(2);
        let v = Vector::from_vec(&c, data(10));
        let before = c.platform().stats_snapshot();
        v.set_distribution(Distribution::Copy).unwrap();
        assert_eq!(v.distribution(), Distribution::Copy);
        let delta = c.platform().stats_snapshot() - before;
        assert_eq!(delta.total_transfers(), 0);
    }

    #[test]
    fn copy_distribution_uploads_to_every_device() {
        let c = ctx(3);
        let v = Vector::from_vec(&c, data(10));
        v.set_distribution(Distribution::Copy).unwrap();
        v.ensure_on_devices().unwrap();
        let parts = v.parts().unwrap();
        assert_eq!(parts.len(), 3);
        for p in &parts {
            assert_eq!(p.len, 10);
            assert_eq!(p.buffer.to_vec(), data(10));
        }
    }

    #[test]
    fn block_to_single_gathers_on_target_device() {
        let c = ctx(2);
        let v = Vector::from_vec(&c, data(20));
        v.ensure_on_devices().unwrap(); // Block by default
        v.set_distribution(Distribution::Single(1)).unwrap();
        let parts = v.parts().unwrap();
        assert_eq!(parts.len(), 1);
        assert_eq!(parts[0].device, 1);
        assert_eq!(parts[0].buffer.to_vec(), data(20));
    }

    #[test]
    fn single_to_block_scatters() {
        let c = ctx(4);
        let v = Vector::from_vec(&c, data(40));
        v.set_distribution(Distribution::Single(0)).unwrap();
        v.ensure_on_devices().unwrap();
        v.set_distribution(Distribution::Block).unwrap();
        let parts = v.parts().unwrap();
        assert_eq!(parts.len(), 4);
        for p in &parts {
            assert_eq!(p.buffer.to_vec(), data(40)[p.offset..p.offset + p.len]);
        }
        assert_eq!(v.to_vec().unwrap(), data(40));
    }

    #[test]
    fn copy_to_block_prefers_local_copies() {
        let c = ctx(2);
        let v = Vector::from_vec(&c, data(16));
        v.set_distribution(Distribution::Copy).unwrap();
        v.ensure_on_devices().unwrap();
        let before = c.platform().stats_snapshot();
        v.set_distribution(Distribution::Block).unwrap();
        let delta = c.platform().stats_snapshot() - before;
        assert_eq!(
            delta.d2d_transfers, 0,
            "copy->block must use device-local copies only"
        );
        assert_eq!(v.to_vec().unwrap(), data(16));
    }

    #[test]
    fn merge_with_add_combines_diverged_copies() {
        let c = ctx(2);
        let v = Vector::from_vec(&c, vec![0.0f32; 8]);
        v.set_distribution(Distribution::Copy).unwrap();
        v.ensure_on_devices().unwrap();
        // Diverge the two copies by hand (as a side-effect kernel would).
        {
            let parts = v.parts().unwrap();
            for (d, p) in parts.iter().enumerate() {
                for i in 0..p.len {
                    p.buffer.set(i, (d + 1) as f32 * 10.0 + i as f32);
                }
            }
        }
        v.mark_devices_modified();
        let add = crate::skel_fn!(
            fn add(x: f32, y: f32) -> f32 {
                x + y
            }
        );
        v.set_distribution_with(Distribution::Block, &add).unwrap();
        let got = v.to_vec().unwrap();
        let want: Vec<f32> = (0..8).map(|i| 30.0 + 2.0 * i as f32).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn merge_with_part_len_not_divisible_by_work_group() {
        // Regression: the merge kernel's padding lanes must not touch
        // out-of-range indices (part length 27 with work-group 64).
        let c = ctx(2);
        let n = 54; // 27 per device under Block
        let v = Vector::from_vec(&c, vec![1.0f32; n]);
        v.set_distribution(Distribution::Copy).unwrap();
        v.ensure_on_devices().unwrap();
        v.mark_devices_modified();
        let add = crate::skel_fn!(
            fn add(x: f32, y: f32) -> f32 {
                x + y
            }
        );
        v.set_distribution_with(Distribution::Block, &add).unwrap();
        assert_eq!(v.to_vec().unwrap(), vec![2.0f32; n]);
    }

    #[test]
    fn merge_from_non_copy_falls_back_to_plain_redistribution() {
        let c = ctx(2);
        let v = Vector::from_vec(&c, data(8));
        v.ensure_on_devices().unwrap(); // Block
        let add = crate::skel_fn!(
            fn add(x: f32, y: f32) -> f32 {
                x + y
            }
        );
        v.set_distribution_with(Distribution::Single(0), &add)
            .unwrap();
        assert_eq!(v.to_vec().unwrap(), data(8));
    }

    #[test]
    fn invalid_single_device_is_rejected() {
        let c = ctx(2);
        let v = Vector::from_vec(&c, data(4));
        assert!(v.set_distribution(Distribution::Single(5)).is_err());
    }

    #[test]
    fn redistribution_advances_virtual_time() {
        let c = ctx(4);
        let v = Vector::from_vec(&c, data(1 << 16));
        v.ensure_on_devices().unwrap();
        c.sync();
        let t0 = c.host_now_s();
        v.set_distribution(Distribution::Copy).unwrap();
        c.sync();
        assert!(c.host_now_s() > t0, "allgather must cost virtual time");
    }

    #[test]
    fn clone_is_a_shared_handle() {
        let c = ctx(1);
        let v = Vector::from_vec(&c, data(4));
        let w = v.clone();
        v.host_view_mut().unwrap()[0] = 7.0;
        assert_eq!(w.to_vec().unwrap()[0], 7.0);
    }
}
