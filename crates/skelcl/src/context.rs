//! The SkelCL context: the paper's `SkelCL::init()`.
//!
//! A [`Context`] owns **two** command queues per device — the main queue
//! carrying kernels and legacy transfers, and a dedicated *copy stream*
//! ([`Context::copy_queue`]) the overlapped paths issue asynchronous
//! transfers on, so halo exchanges and chunked uploads run on the device's
//! copy engine underneath kernels on the compute engine — plus an in-memory
//! registry of already-built skeleton programs (the first layer of the
//! paper's kernel cache; the second, on-disk layer lives in
//! [`vgpu::compiler`]) and the configuration shared by every vector and
//! skeleton created from it.
//!
//! For multi-tenant serving (see the `skelcl-executor` crate) a context can
//! be **forked**: [`Context::fork_streams`] creates a sibling context with
//! its own per-device main+copy stream pair while sharing the platform, the
//! [`ProgramRegistry`], the metrics registry, and the span collector — one
//! stream pair per tenant, device engines shared. The shared program
//! registry optionally enforces **admission control** (a global capacity and
//! a per-owner quota with LRU eviction), so one tenant flooding the cache
//! with throwaway kernels evicts its *own* entries first instead of
//! thrashing everyone else's.

use crate::error::{Error, Result};
use crate::metrics::{Counter, MetricValue, MetricsRegistry};
use crate::trace::{SpanCollector, SpanGuard, SpanRecord};
use parking_lot::Mutex;
use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;
use vgpu::{
    CommandQueue, CompiledKernel, Device, DriverProfile, KernelBody, Platform, PlatformConfig,
    Program, WorkGroup,
};

/// One-time host-side cost of generating a skeleton program's source
/// (string templating + user-function merging).
const CODEGEN_COST_S: f64 = 0.4e-3;

/// SkelCL's default work-group size — the paper: "SkelCL uses its default
/// work-group size of 256" (Section IV-A).
pub const DEFAULT_WORK_GROUP: usize = 256;

/// Configuration for [`Context::new`].
#[derive(Debug, Clone)]
pub struct ContextConfig {
    /// Number of devices to attach (the paper's system has up to 4).
    pub n_devices: usize,
    /// Virtual device model.
    pub spec: vgpu::DeviceSpec,
    /// Default 1-D work-group size for skeleton launches.
    pub work_group: usize,
    /// Kernel binary cache directory tag (isolates test binaries).
    pub cache_tag: Option<String>,
}

impl Default for ContextConfig {
    fn default() -> Self {
        ContextConfig {
            n_devices: 1,
            spec: vgpu::DeviceSpec::default(),
            work_group: DEFAULT_WORK_GROUP,
            cache_tag: None,
        }
    }
}

impl ContextConfig {
    pub fn devices(mut self, n: usize) -> Self {
        self.n_devices = n;
        self
    }

    pub fn spec(mut self, spec: vgpu::DeviceSpec) -> Self {
        self.spec = spec;
        self
    }

    pub fn work_group(mut self, wg: usize) -> Self {
        self.work_group = wg;
        self
    }

    pub fn cache_tag(mut self, tag: impl Into<String>) -> Self {
        self.cache_tag = Some(tag.into());
        self
    }
}

/// One resident entry in the [`ProgramRegistry`].
struct RegistryEntry {
    kernel: CompiledKernel,
    /// The program the kernel was built from — kept so checkers (the
    /// `skelcheck` lint pass) can iterate every source this process built.
    program: Program,
    /// Owner tag of the context that built this entry (tenant name; `""`
    /// for un-forked contexts).
    owner: String,
    /// LRU clock value of the most recent hit or insert.
    last_use: u64,
}

#[derive(Default)]
struct RegistryState {
    entries: HashMap<u64, RegistryEntry>,
    /// Monotonic LRU clock, bumped on every lookup/insert.
    tick: u64,
}

/// The in-memory compiled-program cache, shareable between contexts (every
/// [`Context::fork_streams`] sibling holds the same `Arc<ProgramRegistry>`).
///
/// By default the registry is unbounded — matching SkelCL, which keeps
/// built kernels alive per process. [`ProgramRegistry::with_limits`] turns
/// on **admission control** for multi-tenant serving:
///
/// - `owner_quota` caps how many resident entries a single owner tag may
///   hold; an owner at quota evicts its *own* least-recently-used entry, so
///   a kernel-flooding tenant only thrashes itself.
/// - `capacity` caps the total resident entries; beyond it the globally
///   least-recently-used entry is evicted.
///
/// Evicted programs are not lost — the on-disk compiler cache still holds
/// the binary — but the next use pays code generation plus the (cheap)
/// disk-cache load again.
#[derive(Default)]
pub struct ProgramRegistry {
    /// Total resident-entry cap (`0` = unbounded).
    capacity: usize,
    /// Per-owner resident-entry cap (`0` = unbounded).
    owner_quota: usize,
    state: Mutex<RegistryState>,
}

impl ProgramRegistry {
    /// An unbounded registry (the default for standalone contexts).
    pub fn unbounded() -> ProgramRegistry {
        ProgramRegistry::default()
    }

    /// A registry with admission control: at most `capacity` resident
    /// programs in total and at most `owner_quota` per owner tag (`0`
    /// disables the respective limit).
    pub fn with_limits(capacity: usize, owner_quota: usize) -> ProgramRegistry {
        ProgramRegistry {
            capacity,
            owner_quota,
            state: Mutex::new(RegistryState::default()),
        }
    }

    /// Number of resident compiled programs.
    pub fn len(&self) -> usize {
        self.state.lock().entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of resident programs built by `owner`.
    pub fn resident_for(&self, owner: &str) -> usize {
        self.state
            .lock()
            .entries
            .values()
            .filter(|e| e.owner == owner)
            .count()
    }

    /// Look up a built kernel, bumping its LRU clock on hit.
    fn lookup(&self, hash: u64) -> Option<CompiledKernel> {
        let mut st = self.state.lock();
        st.tick += 1;
        let tick = st.tick;
        st.entries.get_mut(&hash).map(|e| {
            e.last_use = tick;
            e.kernel.clone()
        })
    }

    /// Every resident program's source, for registry-wide analysis
    /// ([`crate::Context::lint_registry`]).
    pub fn programs(&self) -> Vec<Program> {
        self.state
            .lock()
            .entries
            .values()
            .map(|e| e.program.clone())
            .collect()
    }

    /// Insert a freshly built kernel under `owner`, evicting per the
    /// admission-control policy. Returns how many entries were evicted.
    fn insert(&self, owner: &str, hash: u64, program: &Program, kernel: CompiledKernel) -> usize {
        let mut st = self.state.lock();
        st.tick += 1;
        let tick = st.tick;
        let mut evicted = 0;
        if self.owner_quota > 0 {
            while st.entries.values().filter(|e| e.owner == owner).count() >= self.owner_quota {
                let victim = Self::lru_key(&st, Some(owner));
                match victim {
                    Some(k) => {
                        st.entries.remove(&k);
                        evicted += 1;
                    }
                    None => break,
                }
            }
        }
        if self.capacity > 0 {
            while st.entries.len() >= self.capacity {
                let victim = Self::lru_key(&st, None);
                match victim {
                    Some(k) => {
                        st.entries.remove(&k);
                        evicted += 1;
                    }
                    None => break,
                }
            }
        }
        st.entries.insert(
            hash,
            RegistryEntry {
                kernel,
                program: program.clone(),
                owner: owner.to_string(),
                last_use: tick,
            },
        );
        evicted
    }

    /// Key of the least-recently-used entry, optionally restricted to one
    /// owner tag.
    fn lru_key(st: &RegistryState, owner: Option<&str>) -> Option<u64> {
        st.entries
            .iter()
            .filter(|(_, e)| owner.is_none_or(|o| e.owner == o))
            .min_by_key(|(_, e)| e.last_use)
            .map(|(k, _)| *k)
    }
}

impl std::fmt::Debug for ProgramRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ProgramRegistry")
            .field("resident", &self.len())
            .field("capacity", &self.capacity)
            .field("owner_quota", &self.owner_quota)
            .finish()
    }
}

struct ContextInner {
    platform: Platform,
    queues: Vec<CommandQueue>,
    /// One dedicated copy stream per device: asynchronous transfers issued
    /// here overlap kernels on the main queue when their events allow.
    copy_queues: Vec<CommandQueue>,
    profile: DriverProfile,
    work_group: usize,
    /// Owner tag stamped on program-registry entries built through this
    /// context (`""` for un-forked contexts, the tenant name for forks).
    owner: String,
    /// Compiled-program registry (body is a placeholder; launches rebind).
    /// Shared between [`Context::fork_streams`] siblings.
    programs: Arc<ProgramRegistry>,
    /// Typed counter/gauge/histogram registry (see [`crate::metrics`]).
    /// Shared between forked siblings.
    metrics: Arc<MetricsRegistry>,
    /// Halo-exchange events performed under this context (see
    /// [`Context::halo_exchange_count`]); lives in the metrics registry as
    /// `skelcl.halo_exchanges`.
    halo_exchanges: Counter,
    /// In-memory program-registry hits/misses (`skelcl.program_cache.hits`
    /// / `.misses`) — the first cache layer; the disk layer's hits show up
    /// as `cache_loads` in the platform stats.
    program_cache_hits: Counter,
    program_cache_misses: Counter,
    /// Admission-control evictions (`skelcl.program_cache.evictions`).
    program_cache_evictions: Counter,
    /// Skeleton-level span collector (see [`crate::trace`]). Shared between
    /// forked siblings so tenant skeleton spans land in one stream.
    spans: Arc<SpanCollector>,
}

/// A SkelCL session: devices + queues + program registry.
///
/// Cheap to clone; clones share all state (vectors hold one).
#[derive(Clone)]
pub struct Context {
    inner: Arc<ContextInner>,
}

impl Context {
    /// `SkelCL::init()` — create a context on `n_devices` default devices.
    pub fn init(n_devices: usize) -> Context {
        Context::new(ContextConfig::default().devices(n_devices))
    }

    /// Create a context with explicit configuration.
    pub fn new(config: ContextConfig) -> Context {
        let mut pc = PlatformConfig::default()
            .devices(config.n_devices)
            .spec(config.spec);
        if let Some(tag) = &config.cache_tag {
            pc = pc.cache_tag(tag);
        }
        let platform = Platform::new(pc);
        Context::from_platform(platform, config.work_group)
    }

    /// Wrap an existing platform (so benchmarks can run SkelCL and the
    /// low-level baselines against the *same* virtual hardware).
    pub fn from_platform(platform: Platform, work_group: usize) -> Context {
        Context::from_platform_shared(platform, work_group, Arc::new(ProgramRegistry::unbounded()))
    }

    /// Wrap an existing platform with an explicit (possibly shared,
    /// possibly admission-controlled) program registry. The executor service
    /// uses this to bound the compiled-kernel cache across tenants.
    pub fn from_platform_shared(
        platform: Platform,
        work_group: usize,
        programs: Arc<ProgramRegistry>,
    ) -> Context {
        let profile = DriverProfile::skelcl();
        let queues = (0..platform.n_devices())
            .map(|i| platform.queue(i, profile))
            .collect();
        let copy_queues = (0..platform.n_devices())
            .map(|i| platform.queue(i, profile))
            .collect();
        let metrics = Arc::new(MetricsRegistry::default());
        let halo_exchanges = metrics.counter("skelcl.halo_exchanges");
        let program_cache_hits = metrics.counter("skelcl.program_cache.hits");
        let program_cache_misses = metrics.counter("skelcl.program_cache.misses");
        let program_cache_evictions = metrics.counter("skelcl.program_cache.evictions");
        let ctx = Context {
            inner: Arc::new(ContextInner {
                platform,
                queues,
                copy_queues,
                profile,
                work_group,
                owner: String::new(),
                programs,
                metrics,
                halo_exchanges,
                program_cache_hits,
                program_cache_misses,
                program_cache_evictions,
                spans: Arc::new(SpanCollector::default()),
            }),
        };
        // Opt-in dynamic checking for debug/CI runs: SKELCL_CHECK=1 (or
        // "on") arms the online buffer-hazard checker for the whole session.
        if matches!(std::env::var("SKELCL_CHECK").as_deref(), Ok("1") | Ok("on")) {
            ctx.enable_online_hazard_check();
        }
        ctx
    }

    /// Fork a **sibling context for a tenant**: fresh in-order main+copy
    /// streams per device (so this tenant's commands are ordered only among
    /// themselves — the device *engines* stay shared and arbitrate between
    /// tenants), while the platform, the compiled-program registry, the
    /// metrics registry, the span collector, and all `skelcl.*` counters
    /// are shared with `self`. Programs built through the fork are stamped
    /// with `owner` for the registry's admission control.
    ///
    /// Containers and skeletons created from the fork use its streams
    /// automatically; nothing else changes.
    pub fn fork_streams(&self, owner: impl Into<String>) -> Context {
        let platform = self.inner.platform.clone();
        let queues = (0..platform.n_devices())
            .map(|i| platform.queue(i, self.inner.profile))
            .collect();
        let copy_queues = (0..platform.n_devices())
            .map(|i| platform.queue(i, self.inner.profile))
            .collect();
        Context {
            inner: Arc::new(ContextInner {
                platform,
                queues,
                copy_queues,
                profile: self.inner.profile,
                work_group: self.inner.work_group,
                owner: owner.into(),
                programs: self.inner.programs.clone(),
                metrics: self.inner.metrics.clone(),
                halo_exchanges: self.inner.halo_exchanges.clone(),
                program_cache_hits: self.inner.program_cache_hits.clone(),
                program_cache_misses: self.inner.program_cache_misses.clone(),
                program_cache_evictions: self.inner.program_cache_evictions.clone(),
                spans: self.inner.spans.clone(),
            }),
        }
    }

    /// The owner tag stamped on programs built through this context (`""`
    /// unless this context was created by [`Context::fork_streams`]).
    pub fn owner(&self) -> &str {
        &self.inner.owner
    }

    /// The (possibly shared) compiled-program registry.
    pub fn program_registry(&self) -> &Arc<ProgramRegistry> {
        &self.inner.programs
    }

    pub fn n_devices(&self) -> usize {
        self.inner.queues.len()
    }

    pub fn platform(&self) -> &Platform {
        &self.inner.platform
    }

    pub fn device(&self, i: usize) -> Arc<Device> {
        self.inner.platform.device(i)
    }

    /// The queue driving device `i`.
    pub fn queue(&self, i: usize) -> &CommandQueue {
        &self.inner.queues[i]
    }

    pub fn queues(&self) -> &[CommandQueue] {
        &self.inner.queues
    }

    /// The dedicated copy stream of device `i` — the queue the overlapped
    /// halo exchange and the streamed uploads issue async transfers on.
    /// Separate from [`Context::queue`], so a transfer here is not ordered
    /// behind kernels already enqueued on the main queue (only its
    /// `wait_for` events order it).
    pub fn copy_queue(&self, i: usize) -> &CommandQueue {
        &self.inner.copy_queues[i]
    }

    pub fn profile(&self) -> &DriverProfile {
        &self.inner.profile
    }

    /// Default 1-D work-group size for skeleton launches.
    pub fn work_group(&self) -> usize {
        self.inner.work_group
    }

    /// Current virtual host time (seconds since context epoch).
    pub fn host_now_s(&self) -> f64 {
        self.inner.platform.host_now_s()
    }

    /// Host waits for all devices.
    pub fn sync(&self) {
        self.inner.platform.sync_all();
    }

    /// Arm skelcheck's **online buffer-hazard checker**: every subsequently
    /// enqueued command feeds an incremental happens-before analysis, and
    /// the first RAW/WAR/WAW pair on overlapping bytes of one buffer with
    /// no ordering edge panics at that exact enqueue — turning a latent
    /// scheduling race into an immediate test failure. Each checked command
    /// bumps the `skelcheck.hazards_checked` counter, so run reports show
    /// the checker was live.
    ///
    /// Enabled automatically at context creation when the `SKELCL_CHECK`
    /// environment variable is `1` or `on`.
    pub fn enable_online_hazard_check(&self) {
        let checker = skelcheck::OnlineHazardChecker::new();
        let counter = self.inner.metrics.counter("skelcheck.hazards_checked");
        let observe = checker.observer();
        self.inner.platform.set_command_observer(Some(Arc::new(
            move |recs: &[vgpu::CommandRecord]| {
                counter.inc();
                observe(recs);
            },
        )));
    }

    /// Commands vetted by the online hazard checker so far (0 when the
    /// checker was never armed).
    pub fn hazards_checked(&self) -> u64 {
        self.inner
            .metrics
            .counter("skelcheck.hazards_checked")
            .get()
    }

    /// Run skelcheck's **kernel lint pass** over every program resident in
    /// the shared registry, against this context's device local-memory
    /// budget: divergent barriers, oversized `__local` declarations,
    /// host/kernel arity mismatches and unguarded thread-indexed global
    /// accesses. The finding count is added to the `skelcheck.lint_findings`
    /// counter; a healthy codegen layer yields an empty vector.
    pub fn lint_registry(&self) -> Vec<skelcheck::LintFinding> {
        let budget = self.device(0).spec().local_mem_bytes as u64;
        let mut findings = Vec::new();
        for p in self.inner.programs.programs() {
            findings.extend(skelcheck::lint_program(
                &p.name, &p.source, p.n_args, budget,
            ));
        }
        self.inner
            .metrics
            .counter("skelcheck.lint_findings")
            .add(findings.len() as u64);
        findings
    }

    /// Build (or fetch from the two-level cache) the kernel for `program`.
    ///
    /// First call per context: pays code generation + source build (or disk
    /// cache load) on the virtual host clock. Subsequent calls are free —
    /// matching SkelCL, which keeps built kernels alive per process.
    pub fn get_or_build(&self, program: &Program) -> Result<CompiledKernel> {
        let hash = program.hash();
        if let Some(k) = self.inner.programs.lookup(hash) {
            self.inner.program_cache_hits.inc();
            return Ok(k);
        }
        self.inner.program_cache_misses.inc();
        // One-time code generation cost (string templating) on the host.
        self.inner.platform.charge_host(CODEGEN_COST_S);
        let placeholder: KernelBody = Arc::new(|_wg: &WorkGroup| {
            unreachable!("placeholder kernel body must be rebound before launch")
        });
        let kernel = self.inner.queues[0]
            .build_kernel(program, placeholder)
            .map_err(Error::Platform)?;
        let evicted = self
            .inner
            .programs
            .insert(&self.inner.owner, hash, program, kernel.clone());
        self.inner.program_cache_evictions.add(evicted as u64);
        Ok(kernel)
    }

    /// Number of programs currently resident in the registry (equals the
    /// number built so far when the registry is unbounded).
    pub fn programs_built(&self) -> usize {
        self.inner.programs.len()
    }

    /// Number of halo-exchange events performed so far by matrices and
    /// skeletons of this context. One event covers the whole refresh of
    /// every part's halo rows (however many transfers that takes); no-op
    /// calls on already-coherent halos are not counted. This is the
    /// counting hook behind the `Stencil2D::iterate` exchange-regression
    /// tests.
    pub fn halo_exchange_count(&self) -> u64 {
        self.inner.halo_exchanges.get()
    }

    /// Record one halo-exchange event (called by the matrix exchange path
    /// and by `Stencil2D::iterate`'s batched per-iteration exchange).
    pub(crate) fn note_halo_exchange(&self) {
        self.inner.halo_exchanges.inc();
    }

    /// In-memory program-registry hits so far (kernel reused without
    /// rebuilding). Cheap wrapper over the `skelcl.program_cache.hits`
    /// counter in [`Context::metrics`].
    pub fn program_cache_hits(&self) -> u64 {
        self.inner.program_cache_hits.get()
    }

    /// In-memory program-registry misses so far (codegen plus source build
    /// or disk-cache load was paid).
    pub fn program_cache_misses(&self) -> u64 {
        self.inner.program_cache_misses.get()
    }

    /// Programs evicted from the in-memory registry by admission control
    /// (always 0 for unbounded registries).
    pub fn program_cache_evictions(&self) -> u64 {
        self.inner.program_cache_evictions.get()
    }

    /// The context's typed metrics registry. SkelCL's own counters live
    /// under `skelcl.*`; anything may register additional metrics.
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.inner.metrics
    }

    /// One unified view of every metric: the registry's `skelcl.*` entries
    /// merged with the platform's transfer/kernel/build counters under
    /// `vgpu.*` names (e.g. `vgpu.h2d_bytes`, `vgpu.kernel_launches`).
    pub fn metrics_snapshot(&self) -> BTreeMap<String, MetricValue> {
        let mut snap = self.inner.metrics.snapshot();
        let s = self.inner.platform.stats_snapshot();
        for (name, v) in [
            ("vgpu.h2d_transfers", s.h2d_transfers),
            ("vgpu.h2d_bytes", s.h2d_bytes),
            ("vgpu.d2h_transfers", s.d2h_transfers),
            ("vgpu.d2h_bytes", s.d2h_bytes),
            ("vgpu.d2d_transfers", s.d2d_transfers),
            ("vgpu.d2d_bytes", s.d2d_bytes),
            ("vgpu.kernel_launches", s.kernel_launches),
            ("vgpu.kernel_cu_cycles", s.kernel_cu_cycles),
            ("vgpu.kernel_global_bytes", s.kernel_global_bytes),
            ("vgpu.kernel_busy_ns", s.kernel_busy_ns),
            ("vgpu.source_builds", s.source_builds),
            ("vgpu.cache_loads", s.cache_loads),
            ("vgpu.build_virtual_ns", s.build_virtual_ns),
        ] {
            snap.insert(name.to_string(), MetricValue::Counter(v));
        }
        snap
    }

    /// Start collecting skeleton-level spans (see [`crate::trace`]).
    pub fn enable_spans(&self) {
        self.inner.spans.enable();
    }

    /// Whether span collection is on.
    pub fn spans_enabled(&self) -> bool {
        self.inner.spans.enabled()
    }

    /// Take the completed spans recorded so far. Spans from clock epochs
    /// older than the current one (i.e. opened before the last
    /// [`vgpu::Platform::reset_clocks`]) are dropped — their timestamps
    /// refer to a rewound clock.
    pub fn take_spans(&self) -> Vec<SpanRecord> {
        self.inner.spans.take(self.inner.platform.clock_epoch())
    }

    /// Drop all completed spans but keep collection enabled.
    pub fn clear_spans(&self) {
        self.inner.spans.clear();
    }

    /// Open a named span; it closes (and records itself) when the returned
    /// guard drops. The skeleton implementations call this around every
    /// execution; user code may add its own spans the same way.
    pub fn span(&self, name: &'static str) -> SpanGuard {
        SpanGuard::open(self, name)
    }

    /// Allocate a span id for a later [`Context::record_interval_span`]
    /// call, or `None` when span collection is off. The executor uses this
    /// to stamp a job at submit time so its queue-wait and service
    /// intervals can be recorded when the job completes.
    pub fn alloc_span_id(&self) -> Option<u64> {
        self.inner
            .spans
            .enabled()
            .then(|| self.inner.spans.alloc_id())
    }

    /// Record a span whose interval `[start_s, end_s]` was measured
    /// externally (both on the current clock epoch's virtual clock),
    /// without going through a [`SpanGuard`]. `id` is a previously
    /// allocated [`Context::alloc_span_id`] value or `None` to allocate one
    /// now; the recorded id is returned. A no-op returning `None` when span
    /// collection is off. Interval spans carry zero counter deltas — they
    /// describe scheduling (queue wait, service time), not platform work.
    pub fn record_interval_span(
        &self,
        id: Option<u64>,
        name: &'static str,
        parent: Option<u64>,
        start_s: f64,
        end_s: f64,
        attrs: Vec<(&'static str, String)>,
    ) -> Option<u64> {
        if !self.inner.spans.enabled() {
            return None;
        }
        let id = id.unwrap_or_else(|| self.inner.spans.alloc_id());
        let epoch = self.inner.platform.clock_epoch();
        self.inner.spans.record(
            SpanRecord {
                id,
                parent,
                name,
                attrs,
                start_s,
                end_s: end_s.max(start_s),
                epoch,
                stats: vgpu::StatsSnapshot::default(),
                halo_exchanges: 0,
                program_cache_hits: 0,
                program_cache_misses: 0,
                trace_first: 0,
                trace_len: 0,
            },
            epoch,
        );
        Some(id)
    }

    pub(crate) fn span_collector(&self) -> &SpanCollector {
        &self.inner.spans
    }
}

impl std::fmt::Debug for Context {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Context")
            .field("devices", &self.n_devices())
            .field("work_group", &self.work_group())
            .field("programs_built", &self.programs_built())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(n: usize) -> Context {
        Context::new(
            ContextConfig::default()
                .devices(n)
                .spec(vgpu::DeviceSpec::tiny())
                .cache_tag("skelcl-context-tests"),
        )
    }

    #[test]
    fn init_creates_queues_per_device() {
        let c = ctx(3);
        assert_eq!(c.n_devices(), 3);
        assert_eq!(c.queue(2).device().id().0, 2);
        assert_eq!(c.profile().name, "SkelCL");
    }

    #[test]
    fn get_or_build_charges_only_once() {
        let c = ctx(1);
        c.platform().compiler().clear_cache().unwrap();
        let p = Program::from_source("k", "__kernel void k() { /* ctx test */ }");
        let t0 = c.host_now_s();
        c.get_or_build(&p).unwrap();
        let t1 = c.host_now_s();
        assert!(t1 > t0, "first build must cost host time");
        c.get_or_build(&p).unwrap();
        assert_eq!(c.host_now_s(), t1, "second build must be free");
        assert_eq!(c.programs_built(), 1);
        c.platform().compiler().clear_cache().unwrap();
    }

    #[test]
    fn second_context_hits_the_disk_cache() {
        let cfg = ContextConfig::default()
            .spec(vgpu::DeviceSpec::tiny())
            .cache_tag("skelcl-context-disk");
        let p = Program::from_source("k", "__kernel void k() { /* disk cache */ }");

        let c1 = Context::new(cfg.clone());
        c1.platform().compiler().clear_cache().unwrap();
        c1.get_or_build(&p).unwrap();
        let cold = c1.host_now_s();

        let c2 = Context::new(cfg);
        c2.get_or_build(&p).unwrap();
        let warm = c2.host_now_s();
        assert!(
            cold / warm >= 4.0,
            "disk-cached build should be much cheaper: cold={cold} warm={warm}"
        );
        c2.platform().compiler().clear_cache().unwrap();
    }

    #[test]
    fn default_work_group_matches_paper() {
        let c = Context::init(1);
        assert_eq!(c.work_group(), 256);
    }

    fn prog(name: &str) -> Program {
        Program::from_source(name, format!("__kernel void {name}() {{ /* reg */ }}"))
    }

    #[test]
    fn fork_shares_programs_metrics_and_platform() {
        let c = ctx(2);
        c.platform().compiler().clear_cache().unwrap();
        let t = c.fork_streams("tenant-a");
        assert_eq!(t.owner(), "tenant-a");
        assert_eq!(t.n_devices(), 2);
        // Fresh streams: the fork's queues are distinct objects...
        assert!(!std::ptr::eq(c.queue(0), t.queue(0)));
        // ...but the program registry is shared: a build through the fork is
        // a hit through the root.
        let p = prog("fork_shared");
        t.get_or_build(&p).unwrap();
        let misses = c.program_cache_misses();
        c.get_or_build(&p).unwrap();
        assert_eq!(
            c.program_cache_misses(),
            misses,
            "root must hit fork's build"
        );
        assert_eq!(c.programs_built(), t.programs_built());
        // Shared metrics registry: counters registered through either side
        // are visible from both.
        t.metrics().counter("tenant.test").add(7);
        assert_eq!(c.metrics().counter_value("tenant.test"), Some(7));
        c.platform().compiler().clear_cache().unwrap();
    }

    #[test]
    fn owner_quota_evicts_own_lru_entry_first() {
        let reg = ProgramRegistry::with_limits(0, 2);
        let cfg = ContextConfig::default()
            .spec(vgpu::DeviceSpec::tiny())
            .cache_tag("skelcl-context-quota");
        let pc = PlatformConfig::default()
            .devices(1)
            .spec(vgpu::DeviceSpec::tiny());
        let root = Context::from_platform_shared(
            Platform::new(pc.cache_tag("skelcl-context-quota")),
            cfg.work_group,
            Arc::new(reg),
        );
        root.platform().compiler().clear_cache().unwrap();
        let a = root.fork_streams("a");
        let b = root.fork_streams("b");
        a.get_or_build(&prog("qa_one")).unwrap();
        a.get_or_build(&prog("qa_two")).unwrap();
        b.get_or_build(&prog("qb_one")).unwrap();
        assert_eq!(root.program_cache_evictions(), 0);
        // Third program for owner "a" evicts a's LRU entry, not b's.
        a.get_or_build(&prog("qa_three")).unwrap();
        assert_eq!(root.program_cache_evictions(), 1);
        assert_eq!(root.program_registry().resident_for("a"), 2);
        assert_eq!(root.program_registry().resident_for("b"), 1);
        // The evicted program rebuilds (a registry miss), evicting again.
        let misses = root.program_cache_misses();
        a.get_or_build(&prog("qa_one")).unwrap();
        assert_eq!(root.program_cache_misses(), misses + 1);
        assert_eq!(root.program_cache_evictions(), 2);
        root.platform().compiler().clear_cache().unwrap();
    }

    #[test]
    fn capacity_evicts_global_lru() {
        let root = Context::from_platform_shared(
            Platform::new(
                PlatformConfig::default()
                    .devices(1)
                    .spec(vgpu::DeviceSpec::tiny())
                    .cache_tag("skelcl-context-cap"),
            ),
            DEFAULT_WORK_GROUP,
            Arc::new(ProgramRegistry::with_limits(2, 0)),
        );
        root.platform().compiler().clear_cache().unwrap();
        let p1 = prog("cap_one");
        let p2 = prog("cap_two");
        root.get_or_build(&p1).unwrap();
        root.get_or_build(&p2).unwrap();
        // Touch p1 so p2 becomes the LRU victim.
        root.get_or_build(&p1).unwrap();
        root.get_or_build(&prog("cap_three")).unwrap();
        assert_eq!(root.program_cache_evictions(), 1);
        assert_eq!(root.programs_built(), 2);
        // p1 survived; p2 was evicted.
        let hits = root.program_cache_hits();
        root.get_or_build(&p1).unwrap();
        assert_eq!(root.program_cache_hits(), hits + 1);
        let misses = root.program_cache_misses();
        root.get_or_build(&p2).unwrap();
        assert_eq!(root.program_cache_misses(), misses + 1);
        root.platform().compiler().clear_cache().unwrap();
    }
}
