//! The abstract matrix: a 2D host/device container with lazy transfers and
//! row-block multi-device distribution with halo rows.
//!
//! This is the 2D generalisation of [`crate::Vector`] that SkelCL shipped
//! after the paper (the `Matrix<T>` container behind the Gaussian / Sobel /
//! Canny benchmark suite). Data is row-major. The multi-GPU story follows
//! Section III-D of the paper, extended with the *overlap* idea of SkelCL's
//! stencil work: under [`MatrixDistribution::RowBlock`] each device owns a
//! contiguous block of rows **plus `halo` read-only rows above and below
//! it**, and the library keeps those halo rows coherent by automatic
//! device-to-device exchange — the transfers show up in the platform's
//! [`vgpu::StatsSnapshot`] accounting like every other copy.
//!
//! Halo rows wrap around the matrix edges (row `-1` is the last row), which
//! makes every part's halo well-defined regardless of position and lets the
//! `Wrap` boundary mode of [`crate::Stencil2D`] work across devices;
//! `Neumann`/`Zero` boundaries simply never read the wrapped rows.
//!
//! [`MatrixDistribution::ColBlock`] splits *columns* instead: each device
//! owns all rows of a contiguous column block. Host↔device transfers are
//! strided (one per row — each row's column slice is contiguous, the rows
//! are not), and redistribution between row- and column-based layouts
//! splits every row at owner column boundaries, entirely device-to-device.
//! Column blocks feed the [`crate::AllPairs`] skeleton's `B` operand
//! (matrix multiplication, pairwise distances).

use crate::context::Context;
use crate::error::{Error, Result};
use parking_lot::{MappedMutexGuard, Mutex, MutexGuard};
use std::sync::Arc;
use vgpu::{Buffer, Event, Scalar};

/// How a matrix's rows are laid out across the context's devices.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MatrixDistribution {
    /// The whole matrix lives on one device.
    Single(usize),
    /// Every device holds a full copy.
    Copy,
    /// Rows are evenly divided into one contiguous block per device; each
    /// part additionally stores `halo` rows of overlap above and below its
    /// block (wrapping at the matrix edges).
    RowBlock { halo: usize },
    /// Columns are evenly divided into one contiguous block per device;
    /// every part stores all rows of its column block. Transfers are
    /// strided (one per row), which is exactly what a real OpenCL
    /// `clEnqueueWriteBufferRect` would batch up.
    ColBlock,
}

impl MatrixDistribution {
    /// Row-block with no overlap rows.
    pub fn row_block() -> Self {
        MatrixDistribution::RowBlock { halo: 0 }
    }

    /// Do parts under this distribution span the full matrix width?
    pub(crate) fn is_full_width(self) -> bool {
        !matches!(self, MatrixDistribution::ColBlock)
    }
}

/// One device-resident piece of a matrix: `halo_above + rows + halo_below`
/// consecutive (mod `n_rows`) rows of the part's column range, of which
/// `rows` starting at global row `row_offset` are *owned* (written back on
/// download / redistribution). Row-based distributions own the full width
/// (`col_offset == 0`, `cols == ` matrix width); under
/// [`MatrixDistribution::ColBlock`] each part owns the `cols` columns
/// starting at `col_offset`. The buffer's row stride is always `cols`.
#[derive(Clone)]
pub(crate) struct MatrixPart<T: Scalar> {
    pub device: usize,
    pub row_offset: usize,
    pub rows: usize,
    pub halo_above: usize,
    pub halo_below: usize,
    pub col_offset: usize,
    pub cols: usize,
    pub buffer: Buffer<T>,
}

impl<T: Scalar> MatrixPart<T> {
    /// Total rows stored in the buffer (owned + halos).
    pub fn span_rows(&self) -> usize {
        self.halo_above + self.rows + self.halo_below
    }

    /// Element offset of the first *owned* row in the part's buffer — the
    /// base every strided read pattern (column folds, row-segment folds)
    /// must add to skip the halo rows.
    pub fn owned_base(&self) -> usize {
        self.halo_above * self.cols
    }

    /// The global row stored at span row `s` of this part's buffer.
    pub fn global_row(&self, s: usize, n_rows: usize) -> usize {
        debug_assert!(s < self.span_rows());
        (self.row_offset + n_rows + s - self.halo_above) % n_rows
    }
}

/// One chunk of a streamed part upload: span rows
/// `[span_start, span_start + span_len)` of the part's buffer hold valid
/// data once `event` completes on the device's copy engine. A consumer
/// kernel reading those rows passes `event` in its `wait_for` list; rows
/// not yet covered by any chunk are still in flight.
#[derive(Clone)]
pub(crate) struct UploadChunk {
    pub span_start: usize,
    pub span_len: usize,
    pub event: Event,
}

/// Device parts plus their per-part streamed-upload chunk events.
pub(crate) type PartsWithChunks<T> = (Vec<MatrixPart<T>>, Vec<Vec<UploadChunk>>);

struct State<T: Scalar> {
    host: Vec<T>,
    rows: usize,
    cols: usize,
    /// Host copy reflects the newest data.
    host_fresh: bool,
    /// Device copies (owned regions, under `dist`) reflect the newest data.
    device_fresh: bool,
    /// Halo rows agree with their owners' current data. Invalidated when a
    /// skeleton writes fresh device parts; re-established by upload,
    /// redistribution or an explicit [`Matrix::halo_exchange`].
    halos_fresh: bool,
    dist: MatrixDistribution,
    parts: Vec<MatrixPart<T>>,
    /// Per part: the chunk events of a streamed upload (empty for blocking
    /// uploads and device-born matrices). Consumed by the streamed skeleton
    /// paths; conservative consumers may ignore it — their legacy launches
    /// wait for the whole device anyway.
    upload_chunks: Vec<Vec<UploadChunk>>,
    /// The platform clock epoch the chunks were recorded under: a
    /// `reset_clocks` between upload and consumption invalidates the
    /// events' timestamps, so stale-epoch chunks are discarded instead of
    /// waited on.
    upload_epoch: u64,
}

/// The SkelCL matrix. Cloning yields a second handle to the same matrix
/// (C++ SkelCL passes containers by reference).
pub struct Matrix<T: Scalar> {
    ctx: Context,
    state: Arc<Mutex<State<T>>>,
}

impl<T: Scalar> Clone for Matrix<T> {
    fn clone(&self) -> Self {
        Matrix {
            ctx: self.ctx.clone(),
            state: Arc::clone(&self.state),
        }
    }
}

impl<T: Scalar> std::fmt::Debug for Matrix<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let st = self.state.lock();
        f.debug_struct("Matrix")
            .field("rows", &st.rows)
            .field("cols", &st.cols)
            .field("dist", &st.dist)
            .field("host_fresh", &st.host_fresh)
            .field("device_fresh", &st.device_fresh)
            .field("halos_fresh", &st.halos_fresh)
            .finish()
    }
}

fn default_distribution(ctx: &Context) -> MatrixDistribution {
    if ctx.n_devices() == 1 {
        MatrixDistribution::Single(0)
    } else {
        MatrixDistribution::RowBlock { halo: 0 }
    }
}

/// Geometry of one part under a distribution (everything but the buffer).
#[derive(Debug, Clone, Copy)]
struct PartGeom {
    device: usize,
    row_offset: usize,
    rows: usize,
    halo_above: usize,
    halo_below: usize,
    col_offset: usize,
    cols: usize,
}

/// Layout of `dist` for a `rows × cols` matrix on `n_devices` devices.
fn layout(dist: MatrixDistribution, rows: usize, cols: usize, n_devices: usize) -> Vec<PartGeom> {
    let full_width = |device, row_offset, rows, halo| PartGeom {
        device,
        row_offset,
        rows,
        halo_above: halo,
        halo_below: halo,
        col_offset: 0,
        cols,
    };
    match dist {
        MatrixDistribution::Single(d) => vec![full_width(d, 0, rows, 0)],
        MatrixDistribution::Copy => (0..n_devices).map(|d| full_width(d, 0, rows, 0)).collect(),
        MatrixDistribution::RowBlock { halo } => {
            // Wrapped halos are only well-defined up to one full extra copy
            // of the matrix in each direction, so wider requests clamp to
            // `rows`. The clamp is *lossless*: a full-height halo already
            // holds every matrix row within reach of any wrapped or clamped
            // neighbour access, and `Stencil2DView::get` resolves
            // beyond-span deltas modulo the height against exactly that
            // invariant (regression: `tests/degenerate_shapes.rs`).
            let halo = halo.min(rows);
            crate::vector::block_ranges(rows, n_devices)
                .into_iter()
                .enumerate()
                .map(|(d, (off, len))| full_width(d, off, len, if len == 0 { 0 } else { halo }))
                .collect()
        }
        MatrixDistribution::ColBlock => crate::vector::block_ranges(cols, n_devices)
            .into_iter()
            .enumerate()
            .map(|(d, (off, len))| PartGeom {
                device: d,
                row_offset: 0,
                rows: if len == 0 { 0 } else { rows },
                halo_above: 0,
                halo_below: 0,
                col_offset: off,
                cols: len,
            })
            .collect(),
    }
}

impl<T: Scalar> Matrix<T> {
    /// Create a matrix from row-major host data; no device transfer happens
    /// until a skeleton needs the data (lazy copying, Section III-A).
    pub fn from_vec(ctx: &Context, rows: usize, cols: usize, data: Vec<T>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "matrix data must be rows*cols elements"
        );
        let dist = default_distribution(ctx);
        Matrix {
            ctx: ctx.clone(),
            state: Arc::new(Mutex::new(State {
                host: data,
                rows,
                cols,
                host_fresh: true,
                device_fresh: false,
                halos_fresh: false,
                dist,
                parts: Vec::new(),
                upload_chunks: Vec::new(),
                upload_epoch: 0,
            })),
        }
    }

    pub fn from_slice(ctx: &Context, rows: usize, cols: usize, data: &[T]) -> Self {
        Matrix::from_vec(ctx, rows, cols, data.to_vec())
    }

    /// A matrix of `rows × cols` default-initialised elements.
    pub fn zeroed(ctx: &Context, rows: usize, cols: usize) -> Self {
        Matrix::from_vec(ctx, rows, cols, vec![T::default(); rows * cols])
    }

    /// Build from a per-element generator `f(row, col)`.
    pub fn from_fn(ctx: &Context, rows: usize, cols: usize, f: impl Fn(usize, usize) -> T) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Matrix::from_vec(ctx, rows, cols, data)
    }

    pub fn ctx(&self) -> &Context {
        &self.ctx
    }

    pub fn rows(&self) -> usize {
        self.state.lock().rows
    }

    pub fn cols(&self) -> usize {
        self.state.lock().cols
    }

    /// `(rows, cols)`.
    pub fn dims(&self) -> (usize, usize) {
        let st = self.state.lock();
        (st.rows, st.cols)
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        let st = self.state.lock();
        st.rows * st.cols
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn distribution(&self) -> MatrixDistribution {
        self.state.lock().dist
    }

    /// Is the host copy current? (test/introspection aid)
    pub fn host_fresh(&self) -> bool {
        self.state.lock().host_fresh
    }

    /// Are the device copies current? (test/introspection aid)
    pub fn device_fresh(&self) -> bool {
        self.state.lock().device_fresh
    }

    /// Are the halo rows coherent with their owners? (test/introspection aid)
    pub fn halos_fresh(&self) -> bool {
        self.state.lock().halos_fresh
    }

    /// Read access to the row-major host data, downloading first only if the
    /// device copies are newer (lazy copying).
    pub fn host_view(&self) -> Result<MappedMutexGuard<'_, [T]>> {
        let mut st = self.state.lock();
        ensure_on_host(&self.ctx, &mut st)?;
        Ok(MutexGuard::map(st, |s| s.host.as_mut_slice()))
    }

    /// Mutable access to the host data; marks the device copies stale.
    pub fn host_view_mut(&self) -> Result<MappedMutexGuard<'_, [T]>> {
        let mut st = self.state.lock();
        ensure_on_host(&self.ctx, &mut st)?;
        st.host_fresh = true;
        st.device_fresh = false;
        st.halos_fresh = false;
        st.parts.clear();
        st.upload_chunks.clear();
        Ok(MutexGuard::map(st, |s| s.host.as_mut_slice()))
    }

    /// Copy the current contents out to a row-major `Vec` (downloads the
    /// owned regions if needed; halo rows are never written back).
    pub fn to_vec(&self) -> Result<Vec<T>> {
        let mut st = self.state.lock();
        ensure_on_host(&self.ctx, &mut st)?;
        Ok(st.host.clone())
    }

    /// Copy the current contents out like [`Matrix::to_vec`], but **without
    /// blocking the virtual host clock**: each part's owned region is
    /// downloaded by asynchronous reads on the device's copy stream, ordered
    /// after everything already scheduled on that device by a marker.
    /// Returns the data plus the virtual time at which the last read
    /// completes — the moment the response is ready. Coherence state is
    /// untouched (the matrix's own host copy stays stale), so modeled work
    /// on other devices keeps overlapping instead of serializing behind a
    /// host-wide sync. The executor service materialises every job result
    /// through this path.
    pub fn read_back_async(&self) -> Result<(Vec<T>, f64)> {
        let st = self.state.lock();
        if st.host_fresh {
            return Ok((st.host.clone(), self.ctx.host_now_s()));
        }
        assert!(
            st.device_fresh,
            "matrix has neither fresh host nor fresh device data"
        );
        let cols = st.cols;
        let mut out = vec![T::default(); st.rows * cols];
        let mut ready = self.ctx.host_now_s();
        match st.dist {
            MatrixDistribution::Single(_) | MatrixDistribution::Copy => {
                let part = st
                    .parts
                    .first()
                    .ok_or_else(|| Error::NotOnDevice("no device parts to download".into()))?;
                if !out.is_empty() {
                    let q = self.ctx.copy_queue(part.device);
                    let dep = [q.enqueue_marker()];
                    let ev = q.enqueue_read_range_async(
                        &part.buffer,
                        part.halo_above * cols,
                        &mut out,
                        1,
                        &dep,
                    )?;
                    ready = ready.max(ev.end_s);
                }
            }
            MatrixDistribution::RowBlock { .. } => {
                let concurrent = st.parts.iter().filter(|p| p.rows > 0).count().max(1);
                for p in &st.parts {
                    if p.rows == 0 || cols == 0 {
                        continue;
                    }
                    let q = self.ctx.copy_queue(p.device);
                    let dep = [q.enqueue_marker()];
                    let ev = q.enqueue_read_range_async(
                        &p.buffer,
                        p.halo_above * cols,
                        &mut out[p.row_offset * cols..(p.row_offset + p.rows) * cols],
                        concurrent,
                        &dep,
                    )?;
                    ready = ready.max(ev.end_s);
                }
            }
            MatrixDistribution::ColBlock => {
                let concurrent = st.parts.iter().filter(|p| p.cols > 0).count().max(1);
                for p in &st.parts {
                    if p.rows == 0 || p.cols == 0 {
                        continue;
                    }
                    let q = self.ctx.copy_queue(p.device);
                    let dep = [q.enqueue_marker()];
                    let (c0, c1) = (p.col_offset, p.col_offset + p.cols);
                    for r in 0..p.rows {
                        let ev = q.enqueue_read_range_async(
                            &p.buffer,
                            r * p.cols,
                            &mut out[r * cols + c0..r * cols + c1],
                            concurrent,
                            &dep,
                        )?;
                        ready = ready.max(ev.end_s);
                    }
                }
            }
        }
        Ok((out, ready))
    }

    /// The transposed matrix, built host-side (downloads first if the
    /// devices hold the newest data). The result starts life host-fresh
    /// under the context's default distribution; distribute it explicitly
    /// (e.g. [`MatrixDistribution::ColBlock`]) before feeding skeletons.
    pub fn transpose(&self) -> Result<Matrix<T>> {
        let (rows, cols) = self.dims();
        let src = self.host_view()?;
        let mut out = vec![T::default(); rows * cols];
        for r in 0..rows {
            for c in 0..cols {
                out[c * rows + r] = src[r * cols + c];
            }
        }
        drop(src);
        Ok(Matrix::from_vec(&self.ctx, cols, rows, out))
    }

    /// Declare that a kernel modified this matrix on the devices by side
    /// effect (the paper's `dataOnDevicesModified()`). Halo rows become
    /// stale until the next exchange.
    pub fn mark_devices_modified(&self) {
        let mut st = self.state.lock();
        assert!(
            !st.parts.is_empty(),
            "mark_devices_modified on a matrix that was never uploaded"
        );
        st.device_fresh = true;
        st.host_fresh = false;
        st.halos_fresh = false;
        // The kernel's writes supersede any still-recorded upload events.
        st.upload_chunks.clear();
    }

    /// Upload to the devices (per the current distribution) if the device
    /// copies are stale. Skeletons call this implicitly.
    pub fn ensure_on_devices(&self) -> Result<()> {
        let mut st = self.state.lock();
        ensure_on_devices(&self.ctx, &mut st)
    }

    /// Upload to the devices like [`Matrix::ensure_on_devices`], but
    /// **streamed in row chunks on the copy stream**: the upload is issued
    /// as asynchronous chunked writes whose events are kept with the parts,
    /// so a streamed skeleton pass ([`crate::Stencil2D::apply_streamed`])
    /// launches its first kernels while later chunks are still crossing
    /// PCIe. A no-op when the devices are already fresh; bit-identical
    /// data either way.
    pub fn ensure_on_devices_streamed(&self, chunk_rows: usize) -> Result<()> {
        let mut st = self.state.lock();
        ensure_on_devices_streamed(&self.ctx, &mut st, chunk_rows)
    }

    /// Refresh every part's halo rows from the rows' owning parts via
    /// device-to-device copies. A no-op when halos are already coherent,
    /// when the distribution has no halos, or when the freshest data is on
    /// the host (the next upload fills halos anyway).
    pub fn halo_exchange(&self) -> Result<()> {
        let mut st = self.state.lock();
        halo_exchange(&self.ctx, &mut st)
    }

    /// Change the distribution (paper's `setDistribution`, rows instead of
    /// elements). If the devices hold the newest data, the required
    /// inter-device exchange — including filling the new layout's halo rows
    /// — happens automatically; otherwise only metadata changes and the
    /// next upload uses the new layout.
    pub fn set_distribution(&self, dist: MatrixDistribution) -> Result<()> {
        if let MatrixDistribution::Single(d) = dist {
            if d >= self.ctx.n_devices() {
                return Err(Error::BadDistribution(format!(
                    "device {d} out of range ({} devices)",
                    self.ctx.n_devices()
                )));
            }
        }
        let mut st = self.state.lock();
        if st.dist == dist {
            return Ok(());
        }
        if !st.device_fresh {
            st.dist = dist;
            st.parts.clear();
            st.upload_chunks.clear();
            return Ok(());
        }
        redistribute(&self.ctx, &mut st, dist)
    }

    /// The device-resident parts (uploading first if needed). Halo coherence
    /// is **not** implied; callers that read halo rows go through
    /// [`Matrix::halo_exchange`] first (Stencil2D does this automatically).
    pub(crate) fn parts(&self) -> Result<Vec<MatrixPart<T>>> {
        let mut st = self.state.lock();
        ensure_on_devices(&self.ctx, &mut st)?;
        Ok(st.parts.clone())
    }

    /// Like [`Matrix::parts`], but also guarantees halo coherence.
    pub(crate) fn parts_with_fresh_halos(&self) -> Result<Vec<MatrixPart<T>>> {
        let mut st = self.state.lock();
        ensure_on_devices(&self.ctx, &mut st)?;
        halo_exchange(&self.ctx, &mut st)?;
        Ok(st.parts.clone())
    }

    /// The device-resident parts together with any pending streamed-upload
    /// chunk events (uploading *streamed* first if the devices are stale —
    /// halos come straight from the host, so they are coherent). The chunk
    /// lists are empty for parts that were uploaded blocking or written by
    /// kernels; consumers then need no upload dependencies.
    pub(crate) fn parts_with_upload_chunks(&self, chunk_rows: usize) -> Result<PartsWithChunks<T>> {
        let mut st = self.state.lock();
        ensure_on_devices_streamed(&self.ctx, &mut st, chunk_rows)?;
        halo_exchange(&self.ctx, &mut st)?;
        let live = st.upload_chunks.len() == st.parts.len()
            && st.upload_epoch == self.ctx.platform().clock_epoch();
        let chunks = if live {
            st.upload_chunks.clone()
        } else {
            vec![Vec::new(); st.parts.len()]
        };
        Ok((st.parts.clone(), chunks))
    }

    /// Wrap freshly computed device parts as a new matrix (skeleton
    /// outputs): device data is fresh, host copy is stale. `halos_fresh`
    /// records whether the producer also wrote the halo rows (element-wise
    /// skeletons do; stencils cannot).
    pub(crate) fn from_device_parts(
        ctx: &Context,
        rows: usize,
        cols: usize,
        dist: MatrixDistribution,
        parts: Vec<MatrixPart<T>>,
        halos_fresh: bool,
    ) -> Self {
        Matrix {
            ctx: ctx.clone(),
            state: Arc::new(Mutex::new(State {
                host: vec![T::default(); rows * cols],
                rows,
                cols,
                host_fresh: false,
                device_fresh: true,
                halos_fresh,
                dist,
                parts,
                upload_chunks: Vec::new(),
                upload_epoch: 0,
            })),
        }
    }
}

/// The contiguous global-row runs covering span rows `[0, span_rows)` of a
/// part, as `(span_row_start, global_row_start, n_rows)` — wrapped halos
/// split the span into at most three runs.
fn span_runs<T: Scalar>(p: &MatrixPart<T>, n_rows: usize) -> Vec<(usize, usize, usize)> {
    let mut runs = Vec::new();
    let mut s = 0usize;
    while s < p.span_rows() {
        let g = p.global_row(s, n_rows);
        // Run until the global row would wrap past the last matrix row.
        let len = (p.span_rows() - s).min(n_rows - g);
        runs.push((s, g, len));
        s += len;
    }
    runs
}

/// Upload `st.host` per `st.dist` if the device copies are stale. Halo rows
/// are filled straight from the host, so they come out coherent.
///
/// Full-width parts upload in contiguous multi-row runs; column-block parts
/// need one strided write per row (each row's column slice is contiguous on
/// the host but the rows are not adjacent).
fn ensure_on_devices<T: Scalar>(ctx: &Context, st: &mut State<T>) -> Result<()> {
    if st.device_fresh {
        return Ok(());
    }
    assert!(
        st.host_fresh,
        "matrix has neither fresh host nor fresh device data"
    );
    let cols = st.cols;
    let lay = layout(st.dist, st.rows, cols, ctx.n_devices());
    let concurrent = lay.iter().filter(|g| g.rows > 0).count().max(1);
    let mut parts = Vec::with_capacity(lay.len());
    for geom in lay {
        let part = MatrixPart {
            device: geom.device,
            row_offset: geom.row_offset,
            rows: geom.rows,
            halo_above: geom.halo_above,
            halo_below: geom.halo_below,
            col_offset: geom.col_offset,
            cols: geom.cols,
            buffer: ctx
                .device(geom.device)
                .alloc::<T>((geom.halo_above + geom.rows + geom.halo_below) * geom.cols)?,
        };
        if part.rows > 0 && part.cols > 0 {
            if part.cols == cols {
                for (s, g, len) in span_runs(&part, st.rows) {
                    ctx.queue(part.device).enqueue_write_range(
                        &part.buffer,
                        s * cols,
                        &st.host[g * cols..(g + len) * cols],
                        concurrent,
                    )?;
                }
            } else {
                let c0 = part.col_offset;
                let c1 = c0 + part.cols;
                for s in 0..part.span_rows() {
                    let g = part.global_row(s, st.rows);
                    ctx.queue(part.device).enqueue_write_range(
                        &part.buffer,
                        s * part.cols,
                        &st.host[g * cols + c0..g * cols + c1],
                        concurrent,
                    )?;
                }
            }
        }
        parts.push(part);
    }
    st.parts = parts;
    st.upload_chunks.clear();
    st.device_fresh = true;
    st.halos_fresh = true;
    Ok(())
}

/// Upload `st.host` like [`ensure_on_devices`], but **streamed**: each
/// full-width part's span goes out in row chunks of (at most) `chunk_rows`
/// as asynchronous writes on the device's *copy stream*, and the chunks'
/// events are recorded in `st.upload_chunks` so the first dependent kernel
/// can start once its rows have landed — while later chunks are still
/// crossing PCIe. Results are bit-identical to the blocking upload (same
/// bytes, same destination); only the modeled timeline differs.
///
/// Column-block layouts fall back to the blocking upload (their per-row
/// strided writes are already minimal and no consumer chunks by rows).
fn ensure_on_devices_streamed<T: Scalar>(
    ctx: &Context,
    st: &mut State<T>,
    chunk_rows: usize,
) -> Result<()> {
    if st.device_fresh {
        return Ok(());
    }
    if !st.dist.is_full_width() {
        return ensure_on_devices(ctx, st);
    }
    assert!(
        st.host_fresh,
        "matrix has neither fresh host nor fresh device data"
    );
    let chunk_rows = chunk_rows.max(1);
    let cols = st.cols;
    let lay = layout(st.dist, st.rows, cols, ctx.n_devices());
    let concurrent = lay.iter().filter(|g| g.rows > 0).count().max(1);
    let mut parts = Vec::with_capacity(lay.len());
    let mut upload_chunks = Vec::with_capacity(lay.len());
    for geom in lay {
        let part = MatrixPart {
            device: geom.device,
            row_offset: geom.row_offset,
            rows: geom.rows,
            halo_above: geom.halo_above,
            halo_below: geom.halo_below,
            col_offset: geom.col_offset,
            cols: geom.cols,
            buffer: ctx
                .device(geom.device)
                .alloc::<T>((geom.halo_above + geom.rows + geom.halo_below) * geom.cols)?,
        };
        let mut chunks = Vec::new();
        if part.rows > 0 && cols > 0 {
            let queue = ctx.copy_queue(part.device);
            for (s, g, len) in span_runs(&part, st.rows) {
                // Split each contiguous run into chunk_rows-row writes; the
                // copy stream keeps them in order, so chunk k's event also
                // covers every chunk before it.
                let mut done = 0;
                while done < len {
                    let n = chunk_rows.min(len - done);
                    let event = queue.enqueue_write_range_async(
                        &part.buffer,
                        (s + done) * cols,
                        &st.host[(g + done) * cols..(g + done + n) * cols],
                        concurrent,
                        &[],
                    )?;
                    chunks.push(UploadChunk {
                        span_start: s + done,
                        span_len: n,
                        event,
                    });
                    done += n;
                }
            }
        }
        parts.push(part);
        upload_chunks.push(chunks);
    }
    st.parts = parts;
    st.upload_chunks = upload_chunks;
    st.upload_epoch = ctx.platform().clock_epoch();
    st.device_fresh = true;
    st.halos_fresh = true;
    Ok(())
}

/// Download the owned regions into `st.host` if the host copy is stale.
fn ensure_on_host<T: Scalar>(ctx: &Context, st: &mut State<T>) -> Result<()> {
    if st.host_fresh {
        return Ok(());
    }
    assert!(
        st.device_fresh,
        "matrix has neither fresh host nor fresh device data"
    );
    let cols = st.cols;
    match st.dist {
        MatrixDistribution::Single(_) | MatrixDistribution::Copy => {
            let part = st
                .parts
                .first()
                .ok_or_else(|| Error::NotOnDevice("no device parts to download".into()))?;
            let mut tmp = vec![T::default(); part.rows * cols];
            if !tmp.is_empty() {
                ctx.queue(part.device)
                    .enqueue_read_range(&part.buffer, 0, &mut tmp, 1, true)?;
            }
            st.host = tmp;
        }
        MatrixDistribution::RowBlock { .. } => {
            let concurrent = st.parts.iter().filter(|p| p.rows > 0).count().max(1);
            let parts = st.parts.clone();
            for p in &parts {
                if p.rows == 0 || cols == 0 {
                    continue;
                }
                ctx.queue(p.device).enqueue_read_range(
                    &p.buffer,
                    p.halo_above * cols,
                    &mut st.host[p.row_offset * cols..(p.row_offset + p.rows) * cols],
                    concurrent,
                    false,
                )?;
            }
            ctx.sync();
        }
        MatrixDistribution::ColBlock => {
            // One strided read per owned row per part: each row's column
            // slice is contiguous on both sides, the rows are not.
            let concurrent = st.parts.iter().filter(|p| p.cols > 0).count().max(1);
            let parts = st.parts.clone();
            for p in &parts {
                if p.rows == 0 || p.cols == 0 {
                    continue;
                }
                let (c0, c1) = (p.col_offset, p.col_offset + p.cols);
                for r in 0..p.rows {
                    ctx.queue(p.device).enqueue_read_range(
                        &p.buffer,
                        r * p.cols,
                        &mut st.host[r * cols + c0..r * cols + c1],
                        concurrent,
                        false,
                    )?;
                }
            }
            ctx.sync();
        }
    }
    st.host_fresh = true;
    Ok(())
}

/// The part owning global row `g` (for `Copy`, the copy on `prefer`).
fn owner_of_row<T: Scalar>(parts: &[MatrixPart<T>], g: usize, prefer: usize) -> &MatrixPart<T> {
    parts
        .iter()
        .filter(|p| g >= p.row_offset && g < p.row_offset + p.rows)
        .min_by_key(|p| if p.device == prefer { 0 } else { 1 })
        .expect("global row not owned by any part")
}

/// The part owning cell `(g, col)` (for `Copy`, the copy on `prefer`).
fn owner_of_cell<T: Scalar>(
    parts: &[MatrixPart<T>],
    g: usize,
    col: usize,
    prefer: usize,
) -> &MatrixPart<T> {
    parts
        .iter()
        .filter(|p| {
            g >= p.row_offset
                && g < p.row_offset + p.rows
                && col >= p.col_offset
                && col < p.col_offset + p.cols
        })
        .min_by_key(|p| if p.device == prefer { 0 } else { 1 })
        .expect("matrix cell not owned by any part")
}

/// Copy one span row of destination part `dst` (span row `s`, holding
/// global row `g`) from the owning parts, splitting the part's column range
/// at owner boundaries. The column-aware twin of [`fill_rows_from_owners`],
/// used whenever either side of a redistribution is not full-width.
fn fill_span_row_from_owners<T: Scalar>(
    ctx: &Context,
    parts: &[MatrixPart<T>],
    dst: &MatrixPart<T>,
    s: usize,
    g: usize,
    concurrent: usize,
) -> Result<()> {
    let mut c = dst.col_offset;
    let end = dst.col_offset + dst.cols;
    while c < end {
        let src = owner_of_cell(parts, g, c, dst.device);
        let src_span_row = src.halo_above + (g - src.row_offset);
        let w = end.min(src.col_offset + src.cols) - c;
        let src_off = src_span_row * src.cols + (c - src.col_offset);
        let dst_off = s * dst.cols + (c - dst.col_offset);
        if !(src.buffer.same_allocation(&dst.buffer) && src_off == dst_off) {
            ctx.platform().copy_d2d_range(
                &src.buffer,
                src_off,
                &dst.buffer,
                dst_off,
                w,
                concurrent,
            )?;
        }
        c += w;
    }
    Ok(())
}

/// Copy a run of global rows from their owners into destination part
/// `dst`: `run` is `(span_row_start, global_row_start, n_rows)`, as
/// produced by [`span_runs`] / [`halo_runs`]. Returns the number of
/// cross-device transfers issued.
///
/// With `overlap = Some((deps_by_device, out_events))` the copies are
/// issued **asynchronously on the copy engines**: each copy waits for the
/// producer events of its source *and* destination devices (the
/// destination's events also fence the write-after-read hazard against the
/// previous round's readers of the halo region) and its event is appended
/// to `out_events`. With `None`, the legacy device-serializing copies are
/// issued.
fn fill_rows_from_owners<T: Scalar>(
    ctx: &Context,
    parts: &[MatrixPart<T>],
    dst: &MatrixPart<T>,
    run: (usize, usize, usize),
    cols: usize,
    concurrent: usize,
    mut overlap: Option<(&[Vec<Event>], &mut Vec<Event>)>,
) -> Result<usize> {
    let (mut s, mut g, mut len) = run;
    let mut cross = 0usize;
    while len > 0 {
        let src = owner_of_row(parts, g, dst.device);
        let src_span_row = src.halo_above + (g - src.row_offset);
        let run = len.min(src.row_offset + src.rows - g);
        // An identity copy (same allocation, same span position) is a
        // no-op; a same-buffer copy at a *different* span position is real
        // — that is how single-device wrap halos are filled from the owned
        // rows.
        if !(src.buffer.same_allocation(&dst.buffer) && src_span_row == s) {
            if src.device != dst.device {
                cross += 1;
            }
            match overlap.as_mut() {
                None => {
                    ctx.platform().copy_d2d_range(
                        &src.buffer,
                        src_span_row * cols,
                        &dst.buffer,
                        s * cols,
                        run * cols,
                        concurrent,
                    )?;
                }
                Some((deps_by_device, out_events)) => {
                    let mut deps = deps_by_device[src.device].clone();
                    if src.device != dst.device {
                        deps.extend_from_slice(&deps_by_device[dst.device]);
                    }
                    let ev = ctx.platform().copy_d2d_range_async(
                        &src.buffer,
                        src_span_row * cols,
                        &dst.buffer,
                        s * cols,
                        run * cols,
                        concurrent,
                        &deps,
                    )?;
                    out_events.push(ev);
                }
            }
        }
        s += run;
        g += run;
        len -= run;
    }
    Ok(cross)
}

/// Refresh halo rows from their owners (device-to-device).
fn halo_exchange<T: Scalar>(ctx: &Context, st: &mut State<T>) -> Result<()> {
    if st.halos_fresh || !st.device_fresh || st.cols == 0 {
        return Ok(());
    }
    if exchange_part_halos(ctx, &st.parts, st.rows, st.cols, false)? {
        ctx.note_halo_exchange();
    }
    ctx.sync();
    st.halos_fresh = true;
    Ok(())
}

/// Refresh every part's halo rows from the rows' owning parts — the
/// matrix-independent core of [`Matrix::halo_exchange`], also driven
/// directly by `Stencil2D::iterate` on its device-private ping-pong part
/// sets. With `skip_wrapped` the halo runs whose global rows wrap around
/// the matrix edge are left untouched: only the `Wrap` boundary mode ever
/// reads them, so a stencil that knows its boundary is `Neumann`/`Zero`
/// can batch a strictly smaller exchange. Returns whether any halo rows
/// were actually refreshed (one exchange *event*), so callers can count
/// events without counting no-ops — a round where every run is skipped
/// is a no-op.
pub(crate) fn exchange_part_halos<T: Scalar>(
    ctx: &Context,
    parts: &[MatrixPart<T>],
    n_rows: usize,
    cols: usize,
    skip_wrapped: bool,
) -> Result<bool> {
    Ok(exchange_part_halos_impl(ctx, parts, n_rows, cols, skip_wrapped, None)?.0)
}

/// The overlapped twin of [`exchange_part_halos`]: every copy is issued
/// **asynchronously on the copy engines**, waiting only for the producer
/// events in `deps_by_device` (per source/destination device), so the whole
/// exchange runs underneath unrelated kernels. Returns whether anything was
/// refreshed (one exchange *event*, counted by the caller exactly like the
/// serial exchange — issuing on the copy stream must not change the count)
/// and, per part, the copy events that wrote into that part's halos — the
/// `wait_for` list of the next boundary launch reading them.
pub(crate) fn exchange_part_halos_overlapped<T: Scalar>(
    ctx: &Context,
    parts: &[MatrixPart<T>],
    n_rows: usize,
    cols: usize,
    skip_wrapped: bool,
    deps_by_device: &[Vec<Event>],
) -> Result<(bool, Vec<Vec<Event>>)> {
    exchange_part_halos_impl(ctx, parts, n_rows, cols, skip_wrapped, Some(deps_by_device))
}

fn exchange_part_halos_impl<T: Scalar>(
    ctx: &Context,
    parts: &[MatrixPart<T>],
    n_rows: usize,
    cols: usize,
    skip_wrapped: bool,
    deps_by_device: Option<&[Vec<Event>]>,
) -> Result<(bool, Vec<Vec<Event>>)> {
    let mut events: Vec<Vec<Event>> = vec![Vec::new(); parts.len()];
    if cols == 0 {
        return Ok((false, events));
    }
    let mut span = ctx.span("halo.exchange");
    span.attr("shape", format!("{n_rows}x{cols}"));
    span.attr("overlapped", deps_by_device.is_some().to_string());
    span.attr("devices", ctx.n_devices().to_string());
    // Every halo row crosses a device boundary (its owner is a neighbour),
    // so the batch size is roughly two transfers per part.
    let concurrent = (2 * parts.len()).min(2 * ctx.n_devices()).max(1);
    let mut exchanged = false;
    for (i, p) in parts.iter().enumerate() {
        if p.rows == 0 {
            continue;
        }
        for above in [true, false] {
            let halo = if above { p.halo_above } else { p.halo_below };
            if halo == 0 {
                continue;
            }
            for run in halo_runs(p, n_rows, above) {
                if skip_wrapped && run_is_wrapped(p, run, n_rows) {
                    continue;
                }
                exchanged = true;
                let overlap = deps_by_device.map(|deps| (deps, &mut events[i]));
                fill_rows_from_owners(ctx, parts, p, run, cols, concurrent, overlap)?;
            }
        }
    }
    Ok((exchanged, events))
}

/// Does this halo run (as produced by [`halo_runs`]) hold rows that wrap
/// around the matrix edge? Runs never straddle a wrap point ([`halo_runs`]
/// splits there), so testing the first row suffices.
fn run_is_wrapped<T: Scalar>(p: &MatrixPart<T>, run: (usize, usize, usize), n_rows: usize) -> bool {
    let unwrapped = p.row_offset as isize + run.0 as isize - p.halo_above as isize;
    unwrapped < 0 || unwrapped >= n_rows as isize
}

/// The contiguous global-row runs of a part's upper (`above == true`) or
/// lower halo, as `(span_row_start, global_row_start, n_rows)`.
fn halo_runs<T: Scalar>(
    p: &MatrixPart<T>,
    n_rows: usize,
    above: bool,
) -> Vec<(usize, usize, usize)> {
    let (span_start, span_len) = if above {
        (0, p.halo_above)
    } else {
        (p.halo_above + p.rows, p.halo_below)
    };
    let mut runs = Vec::new();
    let mut s = span_start;
    while s < span_start + span_len {
        let g = p.global_row(s, n_rows);
        let len = (span_start + span_len - s).min(n_rows - g);
        runs.push((s, g, len));
        s += len;
    }
    runs
}

/// Move device-fresh data from `st.dist`/`st.parts` into `new_dist`,
/// filling the new layout's owned regions *and* halo rows from the old
/// owners.
fn redistribute<T: Scalar>(
    ctx: &Context,
    st: &mut State<T>,
    new_dist: MatrixDistribution,
) -> Result<()> {
    let cols = st.cols;
    let n_rows = st.rows;
    let n = ctx.n_devices();
    let new_lay = layout(new_dist, n_rows, cols, n);

    let mut new_parts = Vec::with_capacity(new_lay.len());
    for geom in new_lay {
        new_parts.push(MatrixPart {
            device: geom.device,
            row_offset: geom.row_offset,
            rows: geom.rows,
            halo_above: geom.halo_above,
            halo_below: geom.halo_below,
            col_offset: geom.col_offset,
            cols: geom.cols,
            buffer: ctx
                .device(geom.device)
                .alloc::<T>((geom.halo_above + geom.rows + geom.halo_below) * geom.cols)?,
        });
    }

    if cols > 0 {
        // Estimate bus contention: count cross-device row runs first.
        let concurrent = n.max(1);
        let row_based = st.dist.is_full_width() && new_dist.is_full_width();
        for np in &new_parts {
            if np.rows == 0 || np.cols == 0 {
                continue;
            }
            if row_based {
                // Full-width parts on both sides: batch contiguous rows.
                for run in span_runs(np, n_rows) {
                    fill_rows_from_owners(ctx, &st.parts, np, run, cols, concurrent, None)?;
                }
            } else {
                // A column boundary is involved: copy row by row, splitting
                // each row at owner column boundaries (strided transfers).
                for s in 0..np.span_rows() {
                    let g = np.global_row(s, n_rows);
                    fill_span_row_from_owners(ctx, &st.parts, np, s, g, concurrent)?;
                }
            }
        }
        ctx.sync();
    }

    st.parts = new_parts;
    st.upload_chunks.clear();
    st.dist = new_dist;
    st.halos_fresh = true;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::ContextConfig;

    fn ctx(n: usize) -> Context {
        Context::new(
            ContextConfig::default()
                .devices(n)
                .spec(vgpu::DeviceSpec::tiny())
                .work_group(64)
                .cache_tag("skelcl-matrix-tests"),
        )
    }

    fn data(rows: usize, cols: usize) -> Vec<f32> {
        (0..rows * cols).map(|i| i as f32).collect()
    }

    #[test]
    fn creation_is_lazy_no_transfer() {
        let c = ctx(2);
        let before = c.platform().stats_snapshot();
        let m = Matrix::from_vec(&c, 10, 8, data(10, 8));
        assert_eq!(m.dims(), (10, 8));
        assert!(!m.device_fresh());
        let delta = c.platform().stats_snapshot() - before;
        assert_eq!(delta.total_transfers(), 0, "creation must not transfer");
    }

    #[test]
    fn roundtrip_through_row_block() {
        let c = ctx(3);
        let m = Matrix::from_vec(&c, 11, 7, data(11, 7));
        m.set_distribution(MatrixDistribution::RowBlock { halo: 2 })
            .unwrap();
        m.ensure_on_devices().unwrap();
        m.mark_devices_modified();
        assert!(!m.host_fresh());
        assert_eq!(m.to_vec().unwrap(), data(11, 7));
        assert!(m.host_fresh());
    }

    #[test]
    fn read_back_async_matches_to_vec_without_host_sync() {
        for (dist, devices) in [
            (MatrixDistribution::RowBlock { halo: 1 }, 3),
            (MatrixDistribution::ColBlock, 2),
            (MatrixDistribution::Copy, 2),
            (MatrixDistribution::Single(1), 2),
        ] {
            let c = ctx(devices);
            let m = Matrix::from_vec(&c, 9, 7, data(9, 7));
            m.set_distribution(dist).unwrap();
            m.ensure_on_devices().unwrap();
            m.mark_devices_modified(); // devices are the truth now
            let host_before = c.host_now_s();
            let (got, ready) = m.read_back_async().unwrap();
            assert_eq!(
                c.host_now_s(),
                host_before,
                "async read-back must not advance the host clock ({dist:?})"
            );
            assert!(
                ready >= host_before,
                "ready time must not precede the enqueue ({dist:?})"
            );
            assert!(!m.host_fresh(), "coherence state must be untouched");
            assert_eq!(got, data(9, 7), "{dist:?}");
        }
    }

    #[test]
    fn read_back_async_on_host_fresh_data_is_free() {
        let c = ctx(2);
        let m = Matrix::from_vec(&c, 4, 4, data(4, 4));
        let before = c.platform().stats_snapshot();
        let (got, ready) = m.read_back_async().unwrap();
        assert_eq!(got, data(4, 4));
        assert_eq!(ready, c.host_now_s());
        let delta = c.platform().stats_snapshot() - before;
        assert_eq!(delta.total_transfers(), 0);
    }

    #[test]
    fn upload_fills_halos_with_wrapped_rows() {
        let c = ctx(2);
        let rows = 6;
        let cols = 3;
        let m = Matrix::from_vec(&c, rows, cols, data(rows, cols));
        m.set_distribution(MatrixDistribution::RowBlock { halo: 1 })
            .unwrap();
        let parts = m.parts().unwrap();
        assert_eq!(parts.len(), 2);
        let p0 = &parts[0]; // owns rows 0..3, halo above wraps to row 5
        assert_eq!(p0.span_rows(), 5);
        assert_eq!(p0.global_row(0, rows), 5);
        let host = data(rows, cols);
        assert_eq!(p0.buffer.to_vec()[0..cols], host[5 * cols..6 * cols]);
        // Lower halo of part 0 is the first owned row of part 1 (row 3).
        assert_eq!(
            p0.buffer.to_vec()[4 * cols..5 * cols],
            host[3 * cols..4 * cols]
        );
    }

    #[test]
    fn halo_exchange_updates_neighbour_halos() {
        let c = ctx(2);
        let rows = 8;
        let cols = 4;
        let m = Matrix::from_vec(&c, rows, cols, vec![0.0f32; rows * cols]);
        m.set_distribution(MatrixDistribution::RowBlock { halo: 1 })
            .unwrap();
        m.ensure_on_devices().unwrap();
        // Device 1 rewrites its first owned row (global row 4) in place.
        {
            let parts = m.parts().unwrap();
            let p1 = &parts[1];
            for col in 0..cols {
                p1.buffer.set(p1.halo_above * cols + col, 9.0);
            }
        }
        m.mark_devices_modified();
        assert!(!m.halos_fresh());
        let before = c.platform().stats_snapshot();
        m.halo_exchange().unwrap();
        let delta = c.platform().stats_snapshot() - before;
        assert!(delta.d2d_transfers > 0, "halo exchange crosses devices");
        assert!(m.halos_fresh());
        // Device 0's lower halo row must now hold the updated row 4.
        let parts = m.parts().unwrap();
        let p0 = &parts[0];
        let lower_halo_start = (p0.halo_above + p0.rows) * cols;
        for col in 0..cols {
            assert_eq!(p0.buffer.get(lower_halo_start + col), 9.0);
        }
    }

    #[test]
    fn halo_exchange_is_lazy_when_fresh() {
        let c = ctx(3);
        let m = Matrix::from_vec(&c, 9, 5, data(9, 5));
        m.set_distribution(MatrixDistribution::RowBlock { halo: 2 })
            .unwrap();
        m.ensure_on_devices().unwrap();
        let before = c.platform().stats_snapshot();
        m.halo_exchange().unwrap();
        let delta = c.platform().stats_snapshot() - before;
        assert_eq!(
            delta.total_transfers(),
            0,
            "upload already filled the halos"
        );
    }

    #[test]
    fn copy_distribution_replicates() {
        let c = ctx(3);
        let m = Matrix::from_vec(&c, 4, 4, data(4, 4));
        m.set_distribution(MatrixDistribution::Copy).unwrap();
        let parts = m.parts().unwrap();
        assert_eq!(parts.len(), 3);
        for p in &parts {
            assert_eq!(p.buffer.to_vec(), data(4, 4));
        }
    }

    #[test]
    fn row_block_to_single_gathers() {
        let c = ctx(2);
        let m = Matrix::from_vec(&c, 10, 3, data(10, 3));
        m.ensure_on_devices().unwrap();
        m.mark_devices_modified();
        m.set_distribution(MatrixDistribution::Single(1)).unwrap();
        let parts = m.parts().unwrap();
        assert_eq!(parts.len(), 1);
        assert_eq!(parts[0].device, 1);
        assert_eq!(parts[0].buffer.to_vec(), data(10, 3));
        assert_eq!(m.to_vec().unwrap(), data(10, 3));
    }

    #[test]
    fn single_to_row_block_scatters_and_fills_halos() {
        let c = ctx(4);
        let rows = 12;
        let m = Matrix::from_vec(&c, rows, 2, data(rows, 2));
        m.set_distribution(MatrixDistribution::Single(0)).unwrap();
        m.ensure_on_devices().unwrap();
        m.mark_devices_modified();
        m.set_distribution(MatrixDistribution::RowBlock { halo: 1 })
            .unwrap();
        assert!(m.halos_fresh());
        let parts = m.parts().unwrap();
        assert_eq!(parts.len(), 4);
        let host = data(rows, 2);
        for p in &parts {
            let buf = p.buffer.to_vec();
            for s in 0..p.span_rows() {
                let g = p.global_row(s, rows);
                assert_eq!(
                    buf[s * 2..(s + 1) * 2],
                    host[g * 2..(g + 1) * 2],
                    "device {} span row {s} (global {g})",
                    p.device
                );
            }
        }
        assert_eq!(m.to_vec().unwrap(), host);
    }

    #[test]
    fn growing_the_halo_redistributes_device_side() {
        let c = ctx(2);
        let m = Matrix::from_vec(&c, 8, 4, data(8, 4));
        m.set_distribution(MatrixDistribution::RowBlock { halo: 0 })
            .unwrap();
        m.ensure_on_devices().unwrap();
        m.mark_devices_modified();
        let before = c.platform().stats_snapshot();
        m.set_distribution(MatrixDistribution::RowBlock { halo: 2 })
            .unwrap();
        let delta = c.platform().stats_snapshot() - before;
        assert_eq!(delta.h2d_transfers, 0, "no host round trip");
        assert!(delta.d2d_transfers > 0, "halo fill crosses devices");
        assert_eq!(m.to_vec().unwrap(), data(8, 4));
    }

    #[test]
    fn metadata_only_redistribution_when_host_fresh() {
        let c = ctx(2);
        let m = Matrix::from_vec(&c, 6, 6, data(6, 6));
        let before = c.platform().stats_snapshot();
        m.set_distribution(MatrixDistribution::Copy).unwrap();
        m.set_distribution(MatrixDistribution::RowBlock { halo: 3 })
            .unwrap();
        let delta = c.platform().stats_snapshot() - before;
        assert_eq!(delta.total_transfers(), 0);
    }

    #[test]
    fn host_view_mut_invalidates_device_copies() {
        let c = ctx(2);
        let m = Matrix::from_vec(&c, 4, 4, data(4, 4));
        m.ensure_on_devices().unwrap();
        assert!(m.device_fresh());
        m.host_view_mut().unwrap()[5] = 99.0;
        assert!(!m.device_fresh());
        assert_eq!(m.to_vec().unwrap()[5], 99.0);
    }

    #[test]
    fn invalid_single_device_is_rejected() {
        let c = ctx(2);
        let m = Matrix::from_vec(&c, 2, 2, data(2, 2));
        assert!(m.set_distribution(MatrixDistribution::Single(7)).is_err());
    }

    #[test]
    fn oversized_halo_is_clamped_to_the_matrix_height() {
        let c = ctx(2);
        let rows = 4;
        let m = Matrix::from_vec(&c, rows, 2, data(rows, 2));
        m.set_distribution(MatrixDistribution::RowBlock { halo: 100 })
            .unwrap();
        let parts = m.parts().unwrap();
        for p in &parts {
            assert!(p.halo_above <= rows);
            assert!(p.halo_below <= rows);
        }
        assert_eq!(m.to_vec().unwrap(), data(rows, 2));
    }

    #[test]
    fn col_block_scatters_column_slices_with_strided_writes() {
        let c = ctx(3);
        let (rows, cols) = (5, 11);
        let m = Matrix::from_vec(&c, rows, cols, data(rows, cols));
        m.set_distribution(MatrixDistribution::ColBlock).unwrap();
        let before = c.platform().stats_snapshot();
        let parts = m.parts().unwrap();
        let delta = c.platform().stats_snapshot() - before;
        // One strided write per row per part.
        assert_eq!(delta.h2d_transfers as usize, 3 * rows);
        assert_eq!(parts.len(), 3);
        assert_eq!(
            parts.iter().map(|p| p.cols).collect::<Vec<_>>(),
            vec![4, 4, 3],
            "11 columns over 3 devices"
        );
        let host = data(rows, cols);
        for p in &parts {
            let buf = p.buffer.to_vec();
            for r in 0..rows {
                assert_eq!(
                    buf[r * p.cols..(r + 1) * p.cols],
                    host[r * cols + p.col_offset..r * cols + p.col_offset + p.cols],
                    "device {} row {r}",
                    p.device
                );
            }
        }
        assert_eq!(m.to_vec().unwrap(), host);
    }

    #[test]
    fn col_block_round_trip_after_device_modification() {
        let c = ctx(2);
        let (rows, cols) = (6, 7);
        let m = Matrix::from_vec(&c, rows, cols, data(rows, cols));
        m.set_distribution(MatrixDistribution::ColBlock).unwrap();
        m.ensure_on_devices().unwrap();
        m.mark_devices_modified();
        assert!(!m.host_fresh());
        assert_eq!(m.to_vec().unwrap(), data(rows, cols));
    }

    #[test]
    fn row_block_to_col_block_redistributes_device_side() {
        let c = ctx(3);
        let (rows, cols) = (9, 8);
        let m = Matrix::from_vec(&c, rows, cols, data(rows, cols));
        m.set_distribution(MatrixDistribution::RowBlock { halo: 1 })
            .unwrap();
        m.ensure_on_devices().unwrap();
        m.mark_devices_modified();
        let before = c.platform().stats_snapshot();
        m.set_distribution(MatrixDistribution::ColBlock).unwrap();
        let delta = c.platform().stats_snapshot() - before;
        assert_eq!(delta.h2d_transfers, 0, "no host round trip");
        assert!(delta.d2d_transfers > 0, "column split crosses devices");
        assert_eq!(m.to_vec().unwrap(), data(rows, cols));
        // And back again, still device-side.
        let before = c.platform().stats_snapshot();
        m.set_distribution(MatrixDistribution::RowBlock { halo: 0 })
            .unwrap();
        let delta = c.platform().stats_snapshot() - before;
        assert_eq!(delta.h2d_transfers, 0, "no host round trip");
        assert_eq!(m.to_vec().unwrap(), data(rows, cols));
    }

    #[test]
    fn more_devices_than_columns_leaves_empty_col_parts() {
        let c = ctx(4);
        let m = Matrix::from_vec(&c, 3, 2, data(3, 2));
        m.set_distribution(MatrixDistribution::ColBlock).unwrap();
        let parts = m.parts().unwrap();
        assert_eq!(parts.len(), 4);
        assert_eq!(parts.iter().map(|p| p.cols).sum::<usize>(), 2);
        assert!(parts.iter().filter(|p| p.cols == 0).all(|p| p.rows == 0));
        assert_eq!(m.to_vec().unwrap(), data(3, 2));
    }

    #[test]
    fn transpose_flips_dims_and_data() {
        let c = ctx(2);
        let (rows, cols) = (4, 7);
        let m = Matrix::from_vec(&c, rows, cols, data(rows, cols));
        let t = m.transpose().unwrap();
        assert_eq!(t.dims(), (cols, rows));
        let tv = t.to_vec().unwrap();
        let host = data(rows, cols);
        for r in 0..rows {
            for col in 0..cols {
                assert_eq!(tv[col * rows + r], host[r * cols + col]);
            }
        }
        // Double transpose is the identity.
        assert_eq!(t.transpose().unwrap().to_vec().unwrap(), host);
    }

    #[test]
    fn transpose_downloads_device_fresh_data_first() {
        let c = ctx(2);
        let m = Matrix::from_vec(&c, 4, 4, data(4, 4));
        m.ensure_on_devices().unwrap();
        // Rewrite element (0, 0) on the device, then transpose.
        {
            let parts = m.parts().unwrap();
            parts[0].buffer.set(0, 42.0);
        }
        m.mark_devices_modified();
        let t = m.transpose().unwrap();
        assert_eq!(t.to_vec().unwrap()[0], 42.0);
    }

    #[test]
    fn clone_is_a_shared_handle() {
        let c = ctx(1);
        let m = Matrix::from_vec(&c, 2, 2, data(2, 2));
        let w = m.clone();
        m.host_view_mut().unwrap()[0] = 7.0;
        assert_eq!(w.to_vec().unwrap()[0], 7.0);
    }

    #[test]
    fn halo_exchange_events_are_counted_once_each() {
        let c = ctx(2);
        let m = Matrix::from_vec(&c, 8, 4, data(8, 4));
        m.set_distribution(MatrixDistribution::RowBlock { halo: 1 })
            .unwrap();
        m.ensure_on_devices().unwrap();
        let base = c.halo_exchange_count();
        m.halo_exchange().unwrap(); // upload left halos coherent: no event
        assert_eq!(c.halo_exchange_count(), base);
        m.mark_devices_modified();
        m.halo_exchange().unwrap();
        assert_eq!(c.halo_exchange_count(), base + 1);
        m.halo_exchange().unwrap(); // coherent again: no event
        assert_eq!(c.halo_exchange_count(), base + 1);
    }

    #[test]
    fn halo_free_exchange_is_not_an_event() {
        let c = ctx(2);
        let m = Matrix::from_vec(&c, 8, 4, data(8, 4));
        m.set_distribution(MatrixDistribution::RowBlock { halo: 0 })
            .unwrap();
        m.ensure_on_devices().unwrap();
        m.mark_devices_modified();
        let base = c.halo_exchange_count();
        m.halo_exchange().unwrap();
        assert_eq!(c.halo_exchange_count(), base, "no halo rows, no event");
    }

    #[test]
    fn skipping_wrapped_runs_moves_fewer_transfers() {
        // 4 parts with halo 1: a full exchange crosses devices 8 times; a
        // wrap-skipping one 6 (the matrix-edge halos of the first part's
        // top and the last part's bottom are omitted).
        let c = ctx(4);
        let (rows, cols) = (8, 2);
        let m = Matrix::from_vec(&c, rows, cols, data(rows, cols));
        m.set_distribution(MatrixDistribution::RowBlock { halo: 1 })
            .unwrap();
        let parts = m.parts().unwrap();
        let before = c.platform().stats_snapshot();
        assert!(exchange_part_halos(&c, &parts, rows, cols, true).unwrap());
        let skipping = (c.platform().stats_snapshot() - before).d2d_transfers;
        let before = c.platform().stats_snapshot();
        assert!(exchange_part_halos(&c, &parts, rows, cols, false).unwrap());
        let full = (c.platform().stats_snapshot() - before).d2d_transfers;
        assert_eq!(full, 8);
        assert_eq!(skipping, 6);
    }

    #[test]
    fn all_runs_skipped_is_not_an_exchange() {
        // One part owning the whole matrix: both halos are wrapped edge
        // rows, so a wrap-skipping exchange refreshes nothing and must not
        // report an event.
        let c = ctx(1);
        let (rows, cols) = (6, 3);
        let m = Matrix::from_vec(&c, rows, cols, data(rows, cols));
        m.set_distribution(MatrixDistribution::RowBlock { halo: 1 })
            .unwrap();
        let parts = m.parts().unwrap();
        assert!(!exchange_part_halos(&c, &parts, rows, cols, true).unwrap());
        assert!(exchange_part_halos(&c, &parts, rows, cols, false).unwrap());
    }

    #[test]
    fn more_devices_than_rows_leaves_empty_parts() {
        let c = ctx(4);
        let m = Matrix::from_vec(&c, 2, 3, data(2, 3));
        m.set_distribution(MatrixDistribution::RowBlock { halo: 1 })
            .unwrap();
        let parts = m.parts().unwrap();
        assert_eq!(parts.len(), 4);
        assert_eq!(parts.iter().map(|p| p.rows).sum::<usize>(), 2);
        assert!(parts
            .iter()
            .filter(|p| p.rows == 0)
            .all(|p| p.span_rows() == 0));
        assert_eq!(m.to_vec().unwrap(), data(2, 3));
    }
}
