//! Typed metrics registry: named counters, gauges, and histograms.
//!
//! The observability layer records *what happened* in two complementary
//! shapes: the [`crate::trace`] spans capture per-skeleton-call context,
//! while this registry holds cheap named aggregates — halo exchanges,
//! program-cache hits, per-skeleton call counts — that accumulate for the
//! lifetime of a [`crate::Context`]. The platform-level transfer and kernel
//! counters ([`vgpu::StatsSnapshot`]) are merged into
//! [`crate::Context::metrics_snapshot`] under `vgpu.*` names so one call
//! yields the whole picture.
//!
//! Handles ([`Counter`], [`Gauge`], [`Histogram`]) are cheap clones of
//! shared state: register once, bump from anywhere, no lock on the hot
//! path for counters and gauges.

use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Monotonically increasing integer metric.
#[derive(Debug, Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    pub fn inc(&self) {
        self.add(1);
    }

    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Last-write-wins floating-point metric (utilization %, ratios).
#[derive(Debug, Clone, Default)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

#[derive(Debug, Default)]
struct HistogramData {
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
    /// Every observed finite sample, retained for exact quantiles. The virtual
    /// platform is deterministic and bounded (10⁴-ish jobs per bench run),
    /// so exact sample retention is cheaper than getting bucket boundaries
    /// wrong; at 8 bytes per sample a million-job service costs ~8 MB.
    samples: Vec<f64>,
    /// Non-finite samples rejected at `observe` (see the NaN policy there).
    dropped: u64,
}

/// Distribution summary of observed samples — e.g. per-span durations or
/// per-job service latencies. Bucket-free: samples are retained exactly and
/// quantiles (p50/p90/p99) are computed on demand by nearest-rank over the
/// sorted samples, so a snapshot's `p99` is the real 99th-percentile sample,
/// not a bucket midpoint.
#[derive(Debug, Clone, Default)]
pub struct Histogram(Arc<Mutex<HistogramData>>);

impl Histogram {
    /// Record one sample. Non-finite values (NaN, ±∞) are **rejected**: a
    /// single NaN would poison `sum`, `mean`, `min`/`max` and — because NaN
    /// sorts *above* every number under `total_cmp` — silently become the
    /// histogram's p99/max. A duration or latency that is NaN is always an
    /// upstream bug, so it is dropped and counted in the `dropped` tally
    /// instead of corrupting every aggregate downstream.
    pub fn observe(&self, v: f64) {
        let mut d = self.0.lock();
        if !v.is_finite() {
            d.dropped += 1;
            return;
        }
        if d.count == 0 {
            d.min = v;
            d.max = v;
        } else {
            d.min = d.min.min(v);
            d.max = d.max.max(v);
        }
        d.count += 1;
        d.sum += v;
        d.samples.push(v);
    }

    /// How many non-finite samples have been rejected by [`observe`](Self::observe).
    pub fn dropped(&self) -> u64 {
        self.0.lock().dropped
    }

    /// Nearest-rank quantile of the samples observed so far: the smallest
    /// sample `x` such that at least `q·count` samples are ≤ `x`. `q` is
    /// clamped to `(0, 1]`; an empty histogram yields 0.
    pub fn quantile(&self, q: f64) -> f64 {
        let d = self.0.lock();
        let mut sorted = d.samples.clone();
        sorted.sort_by(f64::total_cmp);
        quantile_sorted(&sorted, q).unwrap_or(0.0)
    }

    pub fn snapshot(&self) -> HistogramSnapshot {
        let d = self.0.lock();
        let mut sorted = d.samples.clone();
        sorted.sort_by(f64::total_cmp);
        HistogramSnapshot {
            count: d.count,
            sum: d.sum,
            min: (d.count > 0).then_some(d.min),
            max: (d.count > 0).then_some(d.max),
            p50: quantile_sorted(&sorted, 0.50),
            p90: quantile_sorted(&sorted, 0.90),
            p99: quantile_sorted(&sorted, 0.99),
            dropped: d.dropped,
        }
    }
}

/// Nearest-rank quantile over an ascending-sorted slice (`None` when empty —
/// an empty distribution has no quantiles, and exporters must say so rather
/// than fabricate a 0).
fn quantile_sorted(sorted: &[f64], q: f64) -> Option<f64> {
    if sorted.is_empty() {
        return None;
    }
    let n = sorted.len();
    let rank = (q.clamp(0.0, 1.0) * n as f64).ceil() as usize;
    Some(sorted[rank.clamp(1, n) - 1])
}

/// Point-in-time copy of a [`Histogram`]. `min`/`max` and the quantiles are
/// `None` when no samples were observed — a snapshot never invents a value
/// for an empty distribution (the export path serializes them as JSON
/// `null`). With exactly one sample, every quantile *is* that sample.
/// `p50`/`p90`/`p99` are exact nearest-rank quantiles of all samples
/// observed up to the snapshot; `dropped` counts non-finite samples
/// rejected at `observe`.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct HistogramSnapshot {
    pub count: u64,
    pub sum: f64,
    pub min: Option<f64>,
    pub max: Option<f64>,
    pub p50: Option<f64>,
    pub p90: Option<f64>,
    pub p99: Option<f64>,
    pub dropped: u64,
}

impl HistogramSnapshot {
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }
}

/// One metric's current value, as returned by [`MetricsRegistry::snapshot`].
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    Counter(u64),
    Gauge(f64),
    Histogram(HistogramSnapshot),
}

impl MetricValue {
    /// The counter value, or `None` for other metric kinds.
    pub fn as_counter(&self) -> Option<u64> {
        match self {
            MetricValue::Counter(v) => Some(*v),
            _ => None,
        }
    }

    /// The gauge value, or `None` for other metric kinds.
    pub fn as_gauge(&self) -> Option<f64> {
        match self {
            MetricValue::Gauge(v) => Some(*v),
            _ => None,
        }
    }
}

#[derive(Debug, Clone)]
enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

/// Named metric registry. Registration is get-or-create: asking twice for
/// the same name returns handles to the same underlying metric; asking for
/// an existing name with a *different* kind panics (a programming error,
/// like registering two Prometheus collectors under one name).
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    metrics: Mutex<BTreeMap<String, Metric>>,
}

impl MetricsRegistry {
    pub fn counter(&self, name: &str) -> Counter {
        let mut m = self.metrics.lock();
        match m
            .entry(name.to_string())
            .or_insert_with(|| Metric::Counter(Counter::default()))
        {
            Metric::Counter(c) => c.clone(),
            other => panic!("metric {name:?} already registered as {other:?}, wanted counter"),
        }
    }

    pub fn gauge(&self, name: &str) -> Gauge {
        let mut m = self.metrics.lock();
        match m
            .entry(name.to_string())
            .or_insert_with(|| Metric::Gauge(Gauge::default()))
        {
            Metric::Gauge(g) => g.clone(),
            other => panic!("metric {name:?} already registered as {other:?}, wanted gauge"),
        }
    }

    pub fn histogram(&self, name: &str) -> Histogram {
        let mut m = self.metrics.lock();
        match m
            .entry(name.to_string())
            .or_insert_with(|| Metric::Histogram(Histogram::default()))
        {
            Metric::Histogram(h) => h.clone(),
            other => panic!("metric {name:?} already registered as {other:?}, wanted histogram"),
        }
    }

    /// Current value of a registered counter (`None` when absent or not a
    /// counter).
    pub fn counter_value(&self, name: &str) -> Option<u64> {
        match self.metrics.lock().get(name) {
            Some(Metric::Counter(c)) => Some(c.get()),
            _ => None,
        }
    }

    /// Current value of every registered metric, sorted by name.
    pub fn snapshot(&self) -> BTreeMap<String, MetricValue> {
        self.metrics
            .lock()
            .iter()
            .map(|(name, m)| {
                let v = match m {
                    Metric::Counter(c) => MetricValue::Counter(c.get()),
                    Metric::Gauge(g) => MetricValue::Gauge(g.get()),
                    Metric::Histogram(h) => MetricValue::Histogram(h.snapshot()),
                };
                (name.clone(), v)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_are_shared_by_name() {
        let reg = MetricsRegistry::default();
        let a = reg.counter("skelcl.test.calls");
        let b = reg.counter("skelcl.test.calls");
        a.inc();
        b.add(2);
        assert_eq!(a.get(), 3);
        assert_eq!(reg.counter_value("skelcl.test.calls"), Some(3));
        assert_eq!(reg.counter_value("absent"), None);
    }

    #[test]
    fn gauges_store_last_value() {
        let reg = MetricsRegistry::default();
        let g = reg.gauge("util");
        g.set(0.75);
        assert_eq!(g.get(), 0.75);
        g.set(0.5);
        assert_eq!(reg.snapshot()["util"], MetricValue::Gauge(0.5));
    }

    #[test]
    fn histograms_summarise_samples() {
        let reg = MetricsRegistry::default();
        let h = reg.histogram("span.duration_s");
        h.observe(2.0);
        h.observe(4.0);
        h.observe(3.0);
        let s = h.snapshot();
        assert_eq!(s.count, 3);
        assert_eq!(s.min, Some(2.0));
        assert_eq!(s.max, Some(4.0));
        assert_eq!(s.mean(), 3.0);
    }

    #[test]
    fn empty_histogram_has_no_quantiles() {
        let h = Histogram::default();
        let s = h.snapshot();
        assert_eq!(s.count, 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!((s.min, s.max), (None, None));
        assert_eq!((s.p50, s.p90, s.p99), (None, None, None));
        assert_eq!(h.quantile(0.5), 0.0);
    }

    #[test]
    fn quantiles_are_nearest_rank() {
        let h = Histogram::default();
        // 1..=100 observed out of order: pX must be exactly X.
        for i in (1..=100).rev() {
            h.observe(i as f64);
        }
        assert_eq!(h.quantile(0.50), 50.0);
        assert_eq!(h.quantile(0.90), 90.0);
        assert_eq!(h.quantile(0.99), 99.0);
        assert_eq!(h.quantile(1.0), 100.0);
        let s = h.snapshot();
        assert_eq!((s.p50, s.p90, s.p99), (Some(50.0), Some(90.0), Some(99.0)));
        assert_eq!(s.min, Some(1.0));
        assert_eq!(s.max, Some(100.0));
    }

    #[test]
    fn single_sample_is_every_quantile() {
        let h = Histogram::default();
        h.observe(7.5);
        let s = h.snapshot();
        assert_eq!((s.p50, s.p90, s.p99), (Some(7.5), Some(7.5), Some(7.5)));
        assert_eq!((s.min, s.max), (Some(7.5), Some(7.5)));
    }

    #[test]
    fn non_finite_samples_are_rejected_not_poisonous() {
        let h = Histogram::default();
        h.observe(1.0);
        h.observe(f64::NAN);
        h.observe(f64::INFINITY);
        h.observe(f64::NEG_INFINITY);
        h.observe(3.0);
        assert_eq!(h.dropped(), 3, "all three non-finite samples rejected");
        let s = h.snapshot();
        // Before the reject-at-observe policy, the NaN made sum/mean/max
        // NaN and (sorting above every number under total_cmp) became the
        // p99 and the quantile(1.0) answer. Every aggregate must stay
        // finite and correct now.
        assert_eq!(s.count, 2);
        assert_eq!(s.sum, 4.0);
        assert_eq!(s.mean(), 2.0);
        assert_eq!((s.min, s.max), (Some(1.0), Some(3.0)));
        assert_eq!((s.p50, s.p90, s.p99), (Some(1.0), Some(3.0), Some(3.0)));
        assert_eq!(s.dropped, 3, "snapshot carries the rejected-sample tally");
        assert_eq!(h.quantile(1.0), 3.0);
    }

    #[test]
    fn all_non_finite_stream_behaves_as_empty() {
        let h = Histogram::default();
        h.observe(f64::NAN);
        h.observe(f64::NAN);
        assert_eq!(h.dropped(), 2);
        let s = h.snapshot();
        assert_eq!(s.count, 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(h.quantile(0.99), 0.0);
    }

    #[test]
    fn snapshot_is_sorted_and_typed() {
        let reg = MetricsRegistry::default();
        reg.counter("b.count").inc();
        reg.gauge("a.gauge").set(1.0);
        let snap = reg.snapshot();
        let names: Vec<_> = snap.keys().cloned().collect();
        assert_eq!(names, vec!["a.gauge", "b.count"]);
        assert_eq!(snap["b.count"].as_counter(), Some(1));
        assert_eq!(snap["a.gauge"].as_gauge(), Some(1.0));
        assert_eq!(snap["b.count"].as_gauge(), None);
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_mismatch_panics() {
        let reg = MetricsRegistry::default();
        reg.counter("same.name");
        reg.gauge("same.name");
    }
}
