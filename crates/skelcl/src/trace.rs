//! Skeleton-level spans: structured telemetry for every skeleton execution.
//!
//! With spans enabled ([`crate::Context::enable_spans`]), each skeleton
//! call (`Map::apply`, `Stencil2D::iterate`, …) opens a [`SpanRecord`] on
//! the context recording *what* ran (skeleton kind, shape, distribution,
//! device count) and *what it cost* (virtual start/end time, bytes moved by
//! direction, kernel launches and cache hits, halo exchanges) — the deltas
//! are taken from the platform's monotonic [`vgpu::StatsSnapshot`]
//! counters, so a span is exact even when other work ran before it.
//!
//! Spans nest: a halo exchange performed inside `Stencil2D::iterate` opens
//! a child span whose `parent` is the iterate span's id, and the interval
//! invariant `parent.start ≤ child.start ≤ child.end ≤ parent.end` holds by
//! construction ([`verify_span_nesting`] pins it). When the platform's
//! timeline trace is also enabled, each span remembers the half-open range
//! `[trace_first, trace_first + trace_len)` of [`vgpu::CommandRecord`]s
//! scheduled while it was open — the link the Chrome exporter
//! ([`crate::report::chrome_trace_json`]) uses to merge both layers into
//! one timeline.
//!
//! # Clock epochs
//!
//! [`vgpu::Platform::reset_clocks`] starts a new clock epoch and rewinds
//! virtual time, so timestamps recorded before a reset are meaningless
//! afterwards. Span records carry the epoch they were opened in; a span
//! that closes in a *different* epoch is silently discarded, and
//! [`crate::Context::take_spans`] drops records from stale epochs — the
//! returned spans always belong to the current epoch, like the platform's
//! own timeline trace (which a reset clears).

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use vgpu::StatsSnapshot;

use crate::context::Context;
use parking_lot::Mutex;

/// One completed skeleton-level span.
#[derive(Debug, Clone)]
pub struct SpanRecord {
    /// Unique id within this context (ids are never reused).
    pub id: u64,
    /// Enclosing span's id, when this call ran inside another span.
    pub parent: Option<u64>,
    /// Operation name, e.g. `"stencil2d.iterate"` or `"halo.exchange"`.
    pub name: &'static str,
    /// Free-form context: shape, distribution, device count, iterations…
    pub attrs: Vec<(&'static str, String)>,
    /// Virtual time the span opened (host clock).
    pub start_s: f64,
    /// Virtual time the span closed: host clock joined with every device
    /// engine, i.e. when all work scheduled inside the span completes.
    pub end_s: f64,
    /// Clock epoch the span ran in (see module docs).
    pub epoch: u64,
    /// Platform counter deltas over the span: transfers and bytes by
    /// direction, kernel launches, roofline cycle/byte counters, program
    /// builds vs. binary-cache loads.
    pub stats: StatsSnapshot,
    /// Halo-exchange events performed inside the span.
    pub halo_exchanges: u64,
    /// In-memory program-registry hits inside the span (kernel reused).
    pub program_cache_hits: u64,
    /// In-memory program-registry misses (codegen + build/disk-load paid).
    pub program_cache_misses: u64,
    /// Index of the first platform [`vgpu::CommandRecord`] scheduled while
    /// the span was open (valid when timeline tracing was enabled).
    pub trace_first: usize,
    /// Number of timeline records scheduled while the span was open. The
    /// span's child commands are `trace[trace_first..trace_first + trace_len]`.
    pub trace_len: usize,
}

impl SpanRecord {
    /// Span duration in virtual seconds.
    pub fn duration_s(&self) -> f64 {
        self.end_s - self.start_s
    }
}

#[derive(Default)]
struct CollectorState {
    records: Vec<SpanRecord>,
    /// Ids of currently-open spans, outermost first.
    stack: Vec<u64>,
}

/// Per-context span collector; disabled (and free) by default.
#[derive(Default)]
pub(crate) struct SpanCollector {
    enabled: AtomicBool,
    next_id: AtomicU64,
    state: Mutex<CollectorState>,
}

impl SpanCollector {
    pub(crate) fn enable(&self) {
        self.enabled.store(true, Ordering::Relaxed);
    }

    pub(crate) fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Open a span: allocate an id, note the innermost open span as parent,
    /// push onto the open stack.
    fn open(&self) -> (u64, Option<u64>) {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let mut st = self.state.lock();
        let parent = st.stack.last().copied();
        st.stack.push(id);
        (id, parent)
    }

    /// Close a span: pop it from the open stack and record it unless the
    /// clock epoch changed while it was open.
    fn close(&self, record: SpanRecord, current_epoch: u64) {
        let mut st = self.state.lock();
        if let Some(pos) = st.stack.iter().rposition(|&id| id == record.id) {
            st.stack.remove(pos);
        }
        if record.epoch == current_epoch {
            st.records.push(record);
        }
    }

    /// Allocate a span id without opening a guard — for interval spans
    /// whose endpoints are timestamps captured elsewhere (e.g. the
    /// executor's per-job queue-wait/service intervals, reconstructed at
    /// completion time from the submit/dispatch/ready clocks).
    pub(crate) fn alloc_id(&self) -> u64 {
        self.next_id.fetch_add(1, Ordering::Relaxed)
    }

    /// Record a fully-formed span that never went through the open stack.
    /// Stale-epoch records are discarded, same as [`close`](Self::close).
    pub(crate) fn record(&self, record: SpanRecord, current_epoch: u64) {
        if record.epoch == current_epoch {
            self.state.lock().records.push(record);
        }
    }

    /// Take completed records, dropping any from stale epochs.
    pub(crate) fn take(&self, current_epoch: u64) -> Vec<SpanRecord> {
        let mut records = std::mem::take(&mut self.state.lock().records);
        records.retain(|r| r.epoch == current_epoch);
        records
    }

    pub(crate) fn clear(&self) {
        self.state.lock().records.clear();
    }
}

/// RAII handle for an open span; closes (and records) it on drop. Obtained
/// from the context by the skeleton implementations; a no-op shell when
/// spans are disabled.
pub struct SpanGuard {
    open: Option<OpenSpan>,
}

struct OpenSpan {
    ctx: Context,
    id: u64,
    parent: Option<u64>,
    name: &'static str,
    attrs: Vec<(&'static str, String)>,
    start_s: f64,
    epoch: u64,
    before: StatsSnapshot,
    before_halo: u64,
    before_hits: u64,
    before_misses: u64,
    trace_first: usize,
}

impl SpanGuard {
    pub(crate) fn disabled() -> SpanGuard {
        SpanGuard { open: None }
    }

    pub(crate) fn open(ctx: &Context, name: &'static str) -> SpanGuard {
        let collector = ctx.span_collector();
        if !collector.enabled() {
            return SpanGuard::disabled();
        }
        let platform = ctx.platform();
        let (id, parent) = collector.open();
        SpanGuard {
            open: Some(OpenSpan {
                ctx: ctx.clone(),
                id,
                parent,
                name,
                attrs: Vec::new(),
                start_s: platform.host_now_s(),
                epoch: platform.clock_epoch(),
                before: platform.stats_snapshot(),
                before_halo: ctx.halo_exchange_count(),
                before_hits: ctx.program_cache_hits(),
                before_misses: ctx.program_cache_misses(),
                trace_first: platform.timeline_trace_len(),
            }),
        }
    }

    /// Attach one key/value attribute; no-op when spans are disabled.
    pub fn attr(&mut self, key: &'static str, value: impl Into<String>) {
        if let Some(open) = self.open.as_mut() {
            open.attrs.push((key, value.into()));
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(open) = self.open.take() else {
            return;
        };
        let ctx = open.ctx.clone();
        let platform = ctx.platform();
        // When all work scheduled inside the span is done: host clock
        // joined with every device engine. Reading (not syncing) keeps the
        // span observer-only — it must not advance any clock.
        let end_s = platform
            .devices()
            .iter()
            .map(|d| d.clock().now_s())
            .fold(platform.host_now_s(), f64::max);
        let trace_now = platform.timeline_trace_len();
        let record = SpanRecord {
            id: open.id,
            parent: open.parent,
            name: open.name,
            attrs: open.attrs,
            start_s: open.start_s,
            end_s,
            epoch: open.epoch,
            stats: platform.stats_snapshot() - open.before,
            halo_exchanges: ctx.halo_exchange_count() - open.before_halo,
            program_cache_hits: ctx.program_cache_hits() - open.before_hits,
            program_cache_misses: ctx.program_cache_misses() - open.before_misses,
            trace_first: open.trace_first,
            trace_len: trace_now.saturating_sub(open.trace_first),
        };
        ctx.span_collector().close(record, platform.clock_epoch());
    }
}

/// Check the span-nesting invariant: every child's interval must sit inside
/// its parent's (`parent.start ≤ child.start` and `child.end ≤ parent.end`)
/// and every referenced parent must exist. Returns all violations (one per
/// line) or `None`.
pub fn verify_span_nesting(spans: &[SpanRecord]) -> Option<String> {
    let mut violations = Vec::new();
    let by_id: std::collections::HashMap<u64, &SpanRecord> =
        spans.iter().map(|s| (s.id, s)).collect();
    for s in spans {
        if s.end_s + 1e-12 < s.start_s {
            violations.push(format!(
                "span {} ({}) ends before it starts: [{}, {}]",
                s.id, s.name, s.start_s, s.end_s
            ));
        }
        let Some(parent_id) = s.parent else { continue };
        let Some(p) = by_id.get(&parent_id) else {
            violations.push(format!(
                "span {} ({}) references missing parent {}",
                s.id, s.name, parent_id
            ));
            continue;
        };
        if s.start_s + 1e-12 < p.start_s || s.end_s > p.end_s + 1e-12 {
            violations.push(format!(
                "span {} ({}) [{}, {}] escapes parent {} ({}) [{}, {}]",
                s.id, s.name, s.start_s, s.end_s, p.id, p.name, p.start_s, p.end_s
            ));
        }
    }
    if violations.is_empty() {
        None
    } else {
        Some(violations.join("\n"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(id: u64, parent: Option<u64>, start: f64, end: f64) -> SpanRecord {
        SpanRecord {
            id,
            parent,
            name: "test",
            attrs: Vec::new(),
            start_s: start,
            end_s: end,
            epoch: 0,
            stats: StatsSnapshot::default(),
            halo_exchanges: 0,
            program_cache_hits: 0,
            program_cache_misses: 0,
            trace_first: 0,
            trace_len: 0,
        }
    }

    #[test]
    fn nested_spans_pass() {
        let spans = vec![
            span(0, None, 0.0, 10.0),
            span(1, Some(0), 1.0, 5.0),
            span(2, Some(0), 5.0, 10.0),
        ];
        assert!(verify_span_nesting(&spans).is_none());
    }

    #[test]
    fn escaping_child_is_reported() {
        let spans = vec![span(0, None, 0.0, 4.0), span(1, Some(0), 1.0, 5.0)];
        let msg = verify_span_nesting(&spans).expect("violation expected");
        assert!(msg.contains("escapes parent"), "{msg}");
    }

    #[test]
    fn missing_parent_and_backwards_interval_are_both_reported() {
        let spans = vec![span(1, Some(99), 1.0, 5.0), span(2, None, 3.0, 2.0)];
        let msg = verify_span_nesting(&spans).expect("violations expected");
        assert_eq!(msg.lines().count(), 2, "{msg}");
        assert!(msg.contains("missing parent"), "{msg}");
        assert!(msg.contains("ends before it starts"), "{msg}");
    }
}
