//! Property suite of the async overlap subsystem: for all boundaries,
//! distributions, device counts and chunk sizes,
//!
//! * the overlapped `Stencil2D::iterate` is **bit-identical** to the
//!   serial schedule (`iterate_serial`),
//! * streamed uploads (`Stencil2D::apply_streamed`, `Map::apply_streamed`,
//!   `Matrix::ensure_on_devices_streamed`) are bit-identical to their
//!   blocking twins,
//! * and the simulated timeline never lets two commands overlap on the
//!   same engine of one device, while the overlapped iterate really does
//!   run halo copies *under* interior kernels.
//!
//! Runs under the pinned-seed CI job (`PROPTEST_SEED`).

use proptest::prelude::*;
use skelcl::{
    Boundary2D, Context, ContextConfig, Map, Matrix, MatrixDistribution, Stencil2D, Stencil2DView,
    UserFn, Vector,
};
use vgpu::{verify_engine_exclusive, CommandRecord, DeviceSpec};

fn ctx(n_devices: usize) -> Context {
    Context::new(
        ContextConfig::default()
            .devices(n_devices)
            .spec(DeviceSpec::tiny())
            .work_group(64)
            .cache_tag("prop-overlap"),
    )
}

fn boundary_strategy() -> impl Strategy<Value = Boundary2D> {
    prop_oneof![
        Just(Boundary2D::Neumann),
        Just(Boundary2D::Wrap),
        Just(Boundary2D::Zero),
    ]
}

fn dist_strategy() -> impl Strategy<Value = MatrixDistribution> {
    prop_oneof![
        Just(MatrixDistribution::Single(0)),
        Just(MatrixDistribution::Copy),
        (0usize..3).prop_map(|halo| MatrixDistribution::RowBlock { halo }),
    ]
}

/// A damped cross stencil whose sums are order- and position-sensitive.
fn cross_stencil(
    boundary: Boundary2D,
) -> Stencil2D<f32, f32, impl Fn(&Stencil2DView<'_, f32>) -> f32 + Clone> {
    let user = UserFn::new(
        "ocross",
        "float ocross(__global float* in, int r, int c, uint nr, uint nc) { /* damped cross */ }",
        |v: &Stencil2DView<'_, f32>| {
            0.2 * (v.get(-1, 0) + v.get(1, 0) + v.get(0, -1) + v.get(0, 1)) + 0.1 * v.get(0, 0)
        },
    );
    Stencil2D::new(user, 1, boundary)
}

fn test_data(rows: usize, cols: usize, seed: u32) -> Vec<f32> {
    (0..rows * cols)
        .map(|i| {
            ((((i as u32).wrapping_mul(2654435761).wrapping_add(seed)) % 2000) as f32) / 8.0 - 125.0
        })
        .collect()
}

fn bits(v: &[f32]) -> Vec<u32> {
    v.iter().map(|x| x.to_bits()).collect()
}

/// No two commands on the same engine of one device may overlap in time
/// (the shared [`verify_engine_exclusive`] checker, asserted), and no two
/// unordered commands may touch the same buffer bytes conflictingly (the
/// `skelcheck` happens-before race detector, asserted).
fn assert_schedule_sound(trace: &[CommandRecord]) {
    if let Some(violation) = verify_engine_exclusive(trace) {
        panic!("{violation}");
    }
    if let Some(hazard) = skelcl::check::verify_no_buffer_hazards(trace) {
        panic!("{hazard}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    // The overlapped iterate == the serial iterate, bit for bit, for every
    // shape / boundary / device count / starting distribution / n.
    #[test]
    fn overlapped_iterate_is_bit_identical_to_serial(
        rows in 1usize..20,
        cols in 1usize..12,
        devices in 1usize..5,
        n in 0usize..6,
        boundary in boundary_strategy(),
        dist in dist_strategy(),
        seed in 0u32..1000,
    ) {
        let data = test_data(rows, cols, seed);
        let st = cross_stencil(boundary);
        let c = ctx(devices);

        let serial = {
            let m = Matrix::from_vec(&c, rows, cols, data.clone());
            m.set_distribution(dist).unwrap();
            st.iterate_serial(&m, n).unwrap().to_vec().unwrap()
        };
        let overlapped = {
            let m = Matrix::from_vec(&c, rows, cols, data.clone());
            m.set_distribution(dist).unwrap();
            st.iterate(&m, n).unwrap().to_vec().unwrap()
        };
        prop_assert_eq!(bits(&overlapped), bits(&serial));
    }

    // A streamed stencil pass (chunked upload on the copy stream, banded
    // kernels) == the blocking pass, bit for bit.
    #[test]
    fn streamed_stencil_apply_is_bit_identical(
        rows in 1usize..24,
        cols in 1usize..12,
        devices in 1usize..5,
        chunk_rows in 1usize..9,
        boundary in boundary_strategy(),
        dist in dist_strategy(),
        seed in 0u32..1000,
    ) {
        let data = test_data(rows, cols, seed);
        let st = cross_stencil(boundary);
        let c = ctx(devices);

        let blocking = {
            let m = Matrix::from_vec(&c, rows, cols, data.clone());
            m.set_distribution(dist).unwrap();
            st.apply(&m).unwrap().to_vec().unwrap()
        };
        let streamed = {
            let m = Matrix::from_vec(&c, rows, cols, data.clone());
            m.set_distribution(dist).unwrap();
            st.apply_streamed(&m, chunk_rows).unwrap().to_vec().unwrap()
        };
        prop_assert_eq!(bits(&streamed), bits(&blocking));
    }

    // A streamed map (chunked vector upload, one kernel per chunk) == the
    // blocking map, and a streamed matrix upload round-trips unchanged.
    #[test]
    fn streamed_uploads_are_bit_identical(
        len in 0usize..200,
        rows in 1usize..16,
        cols in 1usize..10,
        devices in 1usize..5,
        chunk in 1usize..33,
        seed in 0u32..1000,
    ) {
        let c = ctx(devices);
        let data: Vec<f32> = (0..len).map(|i| (i as f32) * 0.75 - 3.0).collect();
        let map = Map::new(skelcl::skel_fn!(
            fn scale(x: f32) -> f32 {
                x * 1.5 + 0.25
            }
        ));
        let blocking = map.apply(&Vector::from_vec(&c, data.clone())).unwrap();
        let streamed = map
            .apply_streamed(&Vector::from_vec(&c, data), chunk)
            .unwrap();
        prop_assert_eq!(
            bits(&streamed.to_vec().unwrap()),
            bits(&blocking.to_vec().unwrap())
        );

        let mdata = test_data(rows, cols, seed);
        let m = Matrix::from_vec(&c, rows, cols, mdata.clone());
        m.set_distribution(MatrixDistribution::RowBlock { halo: 1 }).unwrap();
        m.ensure_on_devices_streamed(chunk).unwrap();
        prop_assert_eq!(bits(&m.to_vec().unwrap()), bits(&mdata));
    }

    // Whatever the overlapped paths schedule, no engine of any device ever
    // runs two commands at once.
    #[test]
    fn overlapped_schedules_never_double_book_an_engine(
        rows in 4usize..24,
        cols in 1usize..10,
        devices in 1usize..5,
        n in 1usize..5,
        chunk_rows in 1usize..9,
        boundary in boundary_strategy(),
        seed in 0u32..1000,
    ) {
        let c = ctx(devices);
        c.platform().enable_timeline_trace();
        let st = cross_stencil(boundary);
        let m = Matrix::from_vec(&c, rows, cols, test_data(rows, cols, seed));
        m.set_distribution(MatrixDistribution::RowBlock { halo: 1 }).unwrap();
        st.iterate(&m, n).unwrap();
        let m2 = Matrix::from_vec(&c, rows, cols, test_data(rows, cols, seed + 1));
        m2.set_distribution(MatrixDistribution::RowBlock { halo: 1 }).unwrap();
        st.apply_streamed(&m2, chunk_rows).unwrap();
        c.sync();
        assert_schedule_sound(&c.platform().take_timeline_trace());
    }
}

/// Recorded upload-chunk events die with their clock epoch: a
/// `reset_clocks` between the streamed upload and the streamed pass (what
/// every virtual-time measurement does) must not leave kernels waiting on
/// pre-reset timestamps.
#[test]
fn clock_reset_invalidates_recorded_upload_events() {
    let c = ctx(2);
    let st = cross_stencil(Boundary2D::Neumann);
    let (rows, cols) = (256usize, 64usize);
    let m = Matrix::from_vec(&c, rows, cols, test_data(rows, cols, 3));
    m.set_distribution(MatrixDistribution::RowBlock { halo: 1 })
        .unwrap();
    // Many small chunks: the upload's per-transfer latency piles up to a
    // clearly non-zero completion time.
    m.ensure_on_devices_streamed(4).unwrap();
    c.sync();
    let uploaded_at = c.host_now_s();
    assert!(uploaded_at > 0.0);

    st.apply(&Matrix::from_vec(&c, 8, 8, test_data(8, 8, 4)))
        .unwrap(); // warm the program cache
    c.platform().reset_clocks();
    c.platform().enable_timeline_trace();
    let out = st.apply_streamed(&m, 4).unwrap();
    c.sync();
    let trace = c.platform().take_timeline_trace();
    let first_start = trace
        .iter()
        .map(|r| r.start_s)
        .fold(f64::INFINITY, f64::min);
    assert!(
        first_start < uploaded_at / 2.0,
        "post-reset launches must not wait on pre-reset upload events \
         (first start {first_start}, stale upload ended at {uploaded_at})"
    );
    // And the result is still the plain stencil output.
    let want = st.apply(&m).unwrap().to_vec().unwrap();
    assert_eq!(bits(&out.to_vec().unwrap()), bits(&want));
}

/// `mark_devices_modified` supersedes any recorded upload events: the next
/// streamed pass sees resident data and takes apply's single-launch path
/// instead of banded launches against dead chunk events.
#[test]
fn device_modification_clears_recorded_upload_events() {
    let c = ctx(2);
    let st = cross_stencil(Boundary2D::Neumann);
    let (rows, cols) = (32usize, 8usize);
    let m = Matrix::from_vec(&c, rows, cols, test_data(rows, cols, 5));
    m.set_distribution(MatrixDistribution::RowBlock { halo: 1 })
        .unwrap();
    m.ensure_on_devices_streamed(2).unwrap();
    m.mark_devices_modified();
    st.apply(&Matrix::from_vec(&c, 8, 8, test_data(8, 8, 6)))
        .unwrap(); // warm the program cache
    let before = c.platform().stats_snapshot();
    st.apply_streamed(&m, 2).unwrap();
    let delta = c.platform().stats_snapshot() - before;
    assert_eq!(
        delta.kernel_launches, 2,
        "resident input must launch once per part, not once per chunk band"
    );
}

/// The overlap is real, not just permitted: on multiple devices the
/// overlapped iterate runs at least one halo copy *while* a kernel runs on
/// the same device's compute engine.
#[test]
fn overlapped_iterate_runs_copies_under_kernels() {
    let c = ctx(4);
    let st = cross_stencil(Boundary2D::Neumann);
    let m = Matrix::from_vec(&c, 64, 32, test_data(64, 32, 11));
    m.set_distribution(MatrixDistribution::RowBlock { halo: 1 })
        .unwrap();
    m.ensure_on_devices().unwrap();
    c.platform().enable_timeline_trace();
    st.iterate(&m, 8).unwrap();
    c.sync();
    let trace = c.platform().take_timeline_trace();
    // The overlap must also be *safe*: every copy-under-kernel pair is
    // ordered against its data dependencies.
    assert_schedule_sound(&trace);
    let overlap_s: f64 = vgpu::compute_copy_overlap_s(&trace)
        .iter()
        .map(|(_, s)| s)
        .sum();
    assert!(
        overlap_s > 0.0,
        "no halo copy overlapped a kernel on any device's timeline"
    );
}
