//! Property-based tests of `Stencil2D::iterate(n)`: the batched ping-pong
//! iteration is bit-identical to `n` chained `apply` calls for arbitrary
//! shapes, boundary modes, device counts and starting distributions — and
//! its exchange schedule is exactly one halo exchange per iteration.

use proptest::prelude::*;
use skelcl::{
    Boundary2D, Context, ContextConfig, Matrix, MatrixDistribution, Stencil2D, Stencil2DView,
    UserFn,
};
use vgpu::DeviceSpec;

fn ctx(n_devices: usize) -> Context {
    Context::new(
        ContextConfig::default()
            .devices(n_devices)
            .spec(DeviceSpec::tiny())
            .work_group(64)
            .cache_tag("prop-stencil-iterate"),
    )
}

fn boundary_strategy() -> impl Strategy<Value = Boundary2D> {
    prop_oneof![
        Just(Boundary2D::Neumann),
        Just(Boundary2D::Wrap),
        Just(Boundary2D::Zero),
    ]
}

fn dist_strategy() -> impl Strategy<Value = MatrixDistribution> {
    prop_oneof![
        Just(MatrixDistribution::Single(0)),
        Just(MatrixDistribution::Copy),
        (0usize..3).prop_map(|halo| MatrixDistribution::RowBlock { halo }),
    ]
}

/// A damped cross stencil: value mixing keeps magnitudes bounded over many
/// iterations so repeated applications stay numerically interesting.
fn cross_stencil(
    boundary: Boundary2D,
) -> Stencil2D<f32, f32, impl Fn(&Stencil2DView<'_, f32>) -> f32 + Clone> {
    let user = UserFn::new(
        "icross",
        "float icross(__global float* in, int r, int c, uint nr, uint nc) { /* damped cross */ }",
        |v: &Stencil2DView<'_, f32>| {
            0.2 * (v.get(-1, 0) + v.get(1, 0) + v.get(0, -1) + v.get(0, 1)) + 0.1 * v.get(0, 0)
        },
    );
    Stencil2D::new(user, 1, boundary)
}

fn test_data(rows: usize, cols: usize, seed: u32) -> Vec<f32> {
    (0..rows * cols)
        .map(|i| {
            ((((i as u32).wrapping_mul(2654435761).wrapping_add(seed)) % 2000) as f32) / 8.0 - 125.0
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    // iterate(n) == n chained applies, bit for bit, for every shape /
    // boundary / device count / starting distribution / iteration count.
    #[test]
    fn iterate_is_bit_identical_to_chained_applies(
        rows in 1usize..20,
        cols in 1usize..12,
        devices in 1usize..4,
        n in 0usize..6,
        boundary in boundary_strategy(),
        dist in dist_strategy(),
        seed in 0u32..1000,
    ) {
        let data = test_data(rows, cols, seed);
        let st = cross_stencil(boundary);
        let c = ctx(devices);

        let chained = {
            let m = Matrix::from_vec(&c, rows, cols, data.clone());
            m.set_distribution(dist).unwrap();
            let mut cur = m.clone();
            for _ in 0..n {
                cur = st.apply(&cur).unwrap();
            }
            cur.to_vec().unwrap()
        };
        let iterated = {
            let m = Matrix::from_vec(&c, rows, cols, data.clone());
            m.set_distribution(dist).unwrap();
            st.iterate(&m, n).unwrap().to_vec().unwrap()
        };
        prop_assert_eq!(
            iterated.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            chained.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
    }

    // The dedicated 1/2/4-device sweep of the acceptance criteria: the
    // same input must produce one bit pattern on every device count.
    #[test]
    fn iterate_is_device_count_deterministic(
        rows in 1usize..20,
        cols in 1usize..12,
        n in 1usize..5,
        boundary in boundary_strategy(),
        seed in 0u32..1000,
    ) {
        let data = test_data(rows, cols, seed);
        let st = cross_stencil(boundary);
        let single = {
            let c = ctx(1);
            let m = Matrix::from_vec(&c, rows, cols, data.clone());
            st.iterate(&m, n).unwrap().to_vec().unwrap()
        };
        for devices in [2usize, 4] {
            let c = ctx(devices);
            let m = Matrix::from_vec(&c, rows, cols, data.clone());
            m.set_distribution(MatrixDistribution::RowBlock { halo: 1 }).unwrap();
            let got = st.iterate(&m, n).unwrap().to_vec().unwrap();
            prop_assert_eq!(
                got.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                single.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "{} devices", devices
            );
        }
    }

    // Exchange-count regression: on 2+ devices with a halo-stale input,
    // iterate(n) performs exactly n halo-exchange events — one batched
    // exchange per iteration, never one per radius row or per part — and
    // the overlapped schedule (exchanges issued asynchronously on the copy
    // stream) counts exactly the same events as the serial one.
    #[test]
    fn iterate_performs_exactly_n_halo_exchanges(
        rows in 8usize..24,
        cols in 1usize..8,
        devices in 2usize..5,
        n in 1usize..8,
        boundary in boundary_strategy(),
    ) {
        let c = ctx(devices);
        let st = cross_stencil(boundary);
        for overlapped in [true, false] {
            let m = Matrix::from_vec(&c, rows, cols, test_data(rows, cols, 7));
            m.set_distribution(MatrixDistribution::RowBlock { halo: 1 }).unwrap();
            // Make the input halo-stale, as it is in any real pipeline
            // where the grid arrives from a previous device-side skeleton.
            m.ensure_on_devices().unwrap();
            m.mark_devices_modified();
            let before = c.halo_exchange_count();
            if overlapped {
                st.iterate(&m, n).unwrap();
            } else {
                st.iterate_serial(&m, n).unwrap();
            }
            prop_assert_eq!(
                c.halo_exchange_count() - before,
                n as u64,
                "overlapped={}", overlapped
            );
        }
    }
}

/// The non-property twin of the exchange-count regression, pinned to the
/// acceptance criteria's exact configuration so a failure names it plainly
/// — both schedules must count identically.
#[test]
fn two_and_four_device_iterates_exchange_once_per_iteration() {
    for devices in [2usize, 4] {
        for n in [1usize, 10] {
            for overlapped in [true, false] {
                let c = ctx(devices);
                let st = cross_stencil(Boundary2D::Neumann);
                let m = Matrix::from_vec(&c, 32, 8, test_data(32, 8, 3));
                m.set_distribution(MatrixDistribution::RowBlock { halo: 1 })
                    .unwrap();
                m.ensure_on_devices().unwrap();
                m.mark_devices_modified();
                let before = c.halo_exchange_count();
                if overlapped {
                    st.iterate(&m, n).unwrap();
                } else {
                    st.iterate_serial(&m, n).unwrap();
                }
                assert_eq!(
                    c.halo_exchange_count() - before,
                    n as u64,
                    "{n} iterations on {devices} devices (overlapped={overlapped})"
                );
            }
        }
    }
}

/// A fresh upload seeds coherent halos, so the first iteration's exchange
/// is a no-op and n iterations cost n − 1 exchange events — on either
/// schedule.
#[test]
fn fresh_uploads_save_the_first_exchange() {
    for overlapped in [true, false] {
        let c = ctx(4);
        let st = cross_stencil(Boundary2D::Wrap);
        let m = Matrix::from_vec(&c, 32, 8, test_data(32, 8, 5));
        m.set_distribution(MatrixDistribution::RowBlock { halo: 1 })
            .unwrap();
        let before = c.halo_exchange_count();
        if overlapped {
            st.iterate(&m, 6).unwrap();
        } else {
            st.iterate_serial(&m, 6).unwrap();
        }
        assert_eq!(
            c.halo_exchange_count() - before,
            5,
            "overlapped={overlapped}"
        );
    }
}
