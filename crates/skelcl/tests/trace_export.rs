//! Chrome-trace export round trip: a 4-device `Stencil2D::iterate` run is
//! exported with [`skelcl::report::chrome_trace_json`], parsed back with
//! the crate's own JSON parser, structurally validated as a Chrome
//! trace-event document, and the engine intervals reconstructed *from the
//! JSON* must still satisfy [`vgpu::verify_engine_exclusive`] — the
//! acceptance gate for the exporter: what Perfetto renders is exactly the
//! physical timeline the simulator scheduled.

use skelcl::report::{chrome_trace_json, json};
use skelcl::{
    verify_span_nesting, Boundary2D, Context, ContextConfig, Matrix, MatrixDistribution, Stencil2D,
    Stencil2DView, UserFn,
};
use vgpu::{CommandRecord, DeviceId, DeviceSpec, EngineKind};

fn export_from_iterate() -> String {
    let ctx = Context::new(
        ContextConfig::default()
            .devices(4)
            .spec(DeviceSpec::tiny())
            .work_group(64)
            .cache_tag("trace-export-test"),
    );
    ctx.enable_spans();
    ctx.platform().enable_timeline_trace();

    let user = UserFn::new(
        "exmean",
        "float exmean(__global float* in, int r, int c, uint nr, uint nc) { /* mean */ }",
        |v: &Stencil2DView<'_, f32>| {
            0.25 * (v.get(-1, 0) + v.get(1, 0) + v.get(0, -1) + v.get(0, 1))
        },
    );
    let st = Stencil2D::new(user, 1, Boundary2D::Neumann);
    let m = Matrix::from_vec(&ctx, 48, 16, (0..48 * 16).map(|i| i as f32).collect());
    m.set_distribution(MatrixDistribution::RowBlock { halo: 1 })
        .unwrap();
    st.iterate(&m, 4).unwrap().to_vec().unwrap();
    ctx.sync();

    let spans = ctx.take_spans();
    let trace = ctx.platform().take_timeline_trace();
    assert!(!spans.is_empty() && !trace.is_empty());
    assert_eq!(verify_span_nesting(&spans), None);
    assert_eq!(vgpu::verify_engine_exclusive(&trace), None);
    chrome_trace_json(&spans, &trace)
}

#[test]
fn exported_chrome_trace_round_trips_and_stays_physical() {
    let exported = export_from_iterate();
    let doc = json::parse(&exported).expect("exporter must emit valid JSON");

    let events = doc
        .get("traceEvents")
        .expect("top-level traceEvents")
        .as_arr()
        .expect("traceEvents is an array");
    assert!(!events.is_empty());

    let mut span_events = 0usize;
    let mut engine_records: Vec<CommandRecord> = Vec::new();
    for ev in events {
        // Structural validation: the fields Chrome/Perfetto require.
        let ph = ev
            .get("ph")
            .and_then(|v| v.as_str())
            .expect("every event has a ph");
        assert!(ev.get("name").and_then(|v| v.as_str()).is_some());
        let pid = ev.get("pid").and_then(|v| v.as_num()).expect("pid");
        let tid = ev.get("tid").and_then(|v| v.as_num()).expect("tid");
        match ph {
            "M" => continue, // metadata: process/thread names
            "X" => {}
            other => panic!("unexpected event phase {other:?}"),
        }
        let ts = ev.get("ts").and_then(|v| v.as_num()).expect("ts");
        let dur = ev.get("dur").and_then(|v| v.as_num()).expect("dur");
        assert!(ts.is_finite() && ts >= 0.0, "ts must be a finite µs value");
        assert!(dur.is_finite() && dur >= 0.0, "dur must be non-negative");

        if pid == 0.0 {
            span_events += 1;
        } else {
            // Engine lane: pid = device + 1, tid 0 = compute, 1 = copy.
            let engine = match tid as usize {
                0 => EngineKind::Compute,
                1 => EngineKind::Copy,
                other => panic!("unexpected engine tid {other}"),
            };
            engine_records.push(CommandRecord::interval(
                DeviceId(pid as usize - 1),
                engine,
                ts * 1e-6,
                (ts + dur) * 1e-6,
            ));
        }
    }

    assert!(span_events > 0, "span layer must be present");
    assert!(!engine_records.is_empty(), "engine layer must be present");
    assert!(
        engine_records.iter().any(|r| r.engine == EngineKind::Copy),
        "halo copies must appear on the copy lanes"
    );
    assert_eq!(
        engine_records
            .iter()
            .map(|r| r.device.0)
            .collect::<std::collections::BTreeSet<_>>()
            .len(),
        4,
        "all four devices must appear in the export"
    );

    // The acceptance gate: exclusivity still holds on the *exported*
    // intervals — the µs round trip must not manufacture overlaps.
    assert_eq!(vgpu::verify_engine_exclusive(&engine_records), None);
}

#[test]
fn span_layer_survives_the_round_trip() {
    let exported = export_from_iterate();
    let doc = json::parse(&exported).unwrap();
    let events = doc.get("traceEvents").unwrap().as_arr().unwrap();

    // Reconstruct span intervals from the JSON and re-check nesting using
    // the exported span_id/parent args.
    let mut by_id: std::collections::HashMap<u64, (f64, f64)> = Default::default();
    let mut parents: Vec<(u64, u64)> = Vec::new();
    let mut names: Vec<String> = Vec::new();
    for ev in events {
        if ev.get("ph").and_then(|v| v.as_str()) != Some("X")
            || ev.get("pid").and_then(|v| v.as_num()) != Some(0.0)
        {
            continue;
        }
        let args = ev.get("args").expect("span events carry args");
        let id = args.get("span_id").and_then(|v| v.as_num()).unwrap() as u64;
        let ts = ev.get("ts").and_then(|v| v.as_num()).unwrap();
        let dur = ev.get("dur").and_then(|v| v.as_num()).unwrap();
        by_id.insert(id, (ts, ts + dur));
        if let Some(p) = args.get("parent").and_then(|v| v.as_num()) {
            parents.push((id, p as u64));
        }
        names.push(ev.get("name").and_then(|v| v.as_str()).unwrap().to_string());
    }
    assert!(names.iter().any(|n| n == "stencil2d.iterate"));
    assert!(names.iter().any(|n| n == "halo.exchange"));
    assert!(!parents.is_empty(), "halo spans nest under iterate");
    for (child, parent) in parents {
        let (cs, ce) = by_id[&child];
        let (ps, pe) = by_id[&parent];
        assert!(
            ps <= cs + 1e-6 && ce <= pe + 1e-6,
            "exported child span [{cs}, {ce}] escapes parent [{ps}, {pe}]"
        );
    }
}
