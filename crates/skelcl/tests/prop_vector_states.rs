//! Model-based testing of the Vector coherence state machine: an arbitrary
//! interleaving of host writes, uploads, device-side modifications and
//! redistributions must always agree with a plain `Vec<f32>` model.
//!
//! This is the invariant behind the paper's lazy-copying protocol: "Before
//! every data transfer, the vector implementation checks whether the data
//! transfer is necessary; only then the data is actually transferred."

use proptest::prelude::*;
use skelcl::{Context, ContextConfig, Distribution, Map, Vector};
use vgpu::DeviceSpec;

#[derive(Debug, Clone)]
enum Op {
    /// Overwrite host element `i % len` with `v` (through host_view_mut).
    HostWrite(usize, f32),
    /// Force an upload under the current distribution.
    Upload,
    /// Download + verify against the model.
    Verify,
    /// Run a Map skeleton (x + delta), replacing the vector.
    MapAdd(f32),
    /// Change distribution.
    Redistribute(Distribution),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (any::<usize>(), -100.0f32..100.0).prop_map(|(i, v)| Op::HostWrite(i, v)),
        Just(Op::Upload),
        Just(Op::Verify),
        (-10.0f32..10.0).prop_map(Op::MapAdd),
        prop_oneof![
            Just(Distribution::Single(0)),
            Just(Distribution::Copy),
            Just(Distribution::Block),
        ]
        .prop_map(Op::Redistribute),
    ]
}

fn ctx(n: usize) -> Context {
    Context::new(
        ContextConfig::default()
            .devices(n)
            .spec(DeviceSpec::tiny())
            .work_group(64)
            .cache_tag("vector-state-machine"),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn vector_always_agrees_with_the_model(
        init in prop::collection::vec(-100.0f32..100.0, 1..200),
        devices in 1usize..4,
        ops in prop::collection::vec(op_strategy(), 0..25),
    ) {
        let c = ctx(devices);
        let mut model = init.clone();
        let mut v = Vector::from_slice(&c, &init);
        let add = |d: f32| {
            Map::new(skelcl::UserFn::new(
                "shift",
                "float shift(float x) { return x + DELTA; }",
                move |x: f32| x + d,
            ))
        };

        for op in ops {
            match op {
                Op::HostWrite(i, val) => {
                    let idx = i % model.len();
                    model[idx] = val;
                    v.host_view_mut().unwrap()[idx] = val;
                }
                Op::Upload => {
                    v.ensure_on_devices().unwrap();
                }
                Op::Verify => {
                    prop_assert_eq!(v.to_vec().unwrap(), model.clone());
                }
                Op::MapAdd(d) => {
                    for x in model.iter_mut() {
                        *x += d;
                    }
                    v = add(d).apply(&v).unwrap();
                }
                Op::Redistribute(dist) => {
                    v.set_distribution(dist).unwrap();
                }
            }
        }
        prop_assert_eq!(v.to_vec().unwrap(), model);
    }

    // Laziness invariant: a verify-after-verify performs no transfers.
    #[test]
    fn repeated_reads_are_free(
        init in prop::collection::vec(-10.0f32..10.0, 1..100),
        devices in 1usize..4,
    ) {
        let c = ctx(devices);
        let v = Vector::from_slice(&c, &init);
        v.ensure_on_devices().unwrap();
        v.mark_devices_modified();
        let first = v.to_vec().unwrap();
        let before = c.platform().stats_snapshot();
        let second = v.to_vec().unwrap();
        let third = v.to_vec().unwrap();
        let delta = c.platform().stats_snapshot() - before;
        prop_assert_eq!(delta.total_transfers(), 0);
        prop_assert_eq!(&first, &second);
        prop_assert_eq!(&second, &third);
    }

    // Upload-after-upload under the same distribution is also free.
    #[test]
    fn repeated_uploads_are_free(
        init in prop::collection::vec(-10.0f32..10.0, 1..100),
        devices in 1usize..4,
    ) {
        let c = ctx(devices);
        let v = Vector::from_slice(&c, &init);
        v.ensure_on_devices().unwrap();
        let before = c.platform().stats_snapshot();
        for _ in 0..3 {
            v.ensure_on_devices().unwrap();
        }
        let delta = c.platform().stats_snapshot() - before;
        prop_assert_eq!(delta.total_transfers(), 0);
    }
}
