//! Property-based tests of the Matrix / Stencil2D subsystem: stencils agree
//! with a sequential reference for arbitrary shapes, radii, boundary modes,
//! device counts and halo widths, and row-block distribution round trips
//! (scatter → halo exchange → gather) are the identity.

use proptest::prelude::*;
use skelcl::{
    Boundary2D, Context, ContextConfig, Matrix, MatrixDistribution, Stencil2D, Stencil2DView,
    UserFn,
};
use vgpu::DeviceSpec;

fn ctx(n_devices: usize) -> Context {
    Context::new(
        ContextConfig::default()
            .devices(n_devices)
            .spec(DeviceSpec::tiny())
            .work_group(64)
            .cache_tag("prop-matrix"),
    )
}

fn boundary_strategy() -> impl Strategy<Value = Boundary2D> {
    prop_oneof![
        Just(Boundary2D::Neumann),
        Just(Boundary2D::Wrap),
        Just(Boundary2D::Zero),
    ]
}

fn dist_strategy() -> impl Strategy<Value = MatrixDistribution> {
    prop_oneof![
        Just(MatrixDistribution::Single(0)),
        Just(MatrixDistribution::Copy),
        (0usize..4).prop_map(|halo| MatrixDistribution::RowBlock { halo }),
    ]
}

fn dist_strategy_with_col_block() -> impl Strategy<Value = MatrixDistribution> {
    prop_oneof![
        Just(MatrixDistribution::Single(0)),
        Just(MatrixDistribution::Copy),
        Just(MatrixDistribution::ColBlock),
        (0usize..4).prop_map(|halo| MatrixDistribution::RowBlock { halo }),
    ]
}

/// The sequential truth for the radius-1 cross stencil used below.
fn reference_cross(data: &[f32], rows: usize, cols: usize, boundary: Boundary2D) -> Vec<f32> {
    let at = |r: isize, c: isize| -> f32 {
        let (r, c) = match boundary {
            Boundary2D::Neumann => (r.clamp(0, rows as isize - 1), c.clamp(0, cols as isize - 1)),
            Boundary2D::Wrap => (r.rem_euclid(rows as isize), c.rem_euclid(cols as isize)),
            Boundary2D::Zero => {
                if r < 0 || r >= rows as isize || c < 0 || c >= cols as isize {
                    return 0.0;
                }
                (r, c)
            }
        };
        data[r as usize * cols + c as usize]
    };
    let mut out = Vec::with_capacity(rows * cols);
    for r in 0..rows as isize {
        for c in 0..cols as isize {
            out.push(at(r - 1, c) + at(r + 1, c) + at(r, c - 1) + at(r, c + 1) + 2.0 * at(r, c));
        }
    }
    out
}

fn cross_stencil(
    boundary: Boundary2D,
) -> Stencil2D<f32, f32, impl Fn(&Stencil2DView<'_, f32>) -> f32 + Clone> {
    let user = UserFn::new(
        "pcross",
        "float pcross(__global float* in, int r, int c, uint nr, uint nc) { /* cross */ }",
        |v: &Stencil2DView<'_, f32>| {
            v.get(-1, 0) + v.get(1, 0) + v.get(0, -1) + v.get(0, 1) + 2.0 * v.get(0, 0)
        },
    );
    Stencil2D::new(user, 1, boundary)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    // Stencil2D == sequential reference, for every shape / boundary /
    // device count / starting distribution.
    #[test]
    fn stencil2d_matches_sequential_reference(
        rows in 1usize..24,
        cols in 1usize..16,
        devices in 1usize..4,
        boundary in boundary_strategy(),
        dist in dist_strategy(),
        seed in 0u32..1000,
    ) {
        let data: Vec<f32> = (0..rows * cols)
            .map(|i| (((i as u32).wrapping_mul(2654435761).wrapping_add(seed) % 2000) as f32)
                - 1000.0)
            .collect();
        let c = ctx(devices);
        let m = Matrix::from_vec(&c, rows, cols, data.clone());
        m.set_distribution(dist).unwrap();
        let got = cross_stencil(boundary).apply(&m).unwrap().to_vec().unwrap();
        let want = reference_cross(&data, rows, cols, boundary);
        prop_assert_eq!(
            got.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            want.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
    }

    // Scatter → halo exchange → gather is the identity, whatever the halo.
    #[test]
    fn row_block_round_trip_is_identity(
        rows in 1usize..40,
        cols in 1usize..12,
        devices in 1usize..4,
        halo in 0usize..5,
    ) {
        let data: Vec<f32> = (0..rows * cols).map(|i| i as f32).collect();
        let c = ctx(devices);
        let m = Matrix::from_vec(&c, rows, cols, data.clone());
        m.set_distribution(MatrixDistribution::RowBlock { halo }).unwrap();
        m.ensure_on_devices().unwrap();
        m.mark_devices_modified(); // device copies become the truth
        m.halo_exchange().unwrap();
        prop_assert_eq!(m.to_vec().unwrap(), data);
    }

    // RowBlock ↔ ColBlock ↔ Single: every device-side redistribution path
    // through row- and column-based layouts is the identity on the data,
    // over random shapes, device counts and halo widths.
    #[test]
    fn row_col_single_redistribution_round_trip_is_identity(
        rows in 1usize..28,
        cols in 1usize..14,
        devices in 1usize..4,
        halo in 0usize..4,
        path in prop::collection::vec(dist_strategy_with_col_block(), 1..6),
    ) {
        let data: Vec<f32> = (0..rows * cols).map(|i| (i * 13 % 89) as f32).collect();
        let c = ctx(devices);
        let m = Matrix::from_vec(&c, rows, cols, data.clone());
        m.set_distribution(MatrixDistribution::RowBlock { halo }).unwrap();
        m.ensure_on_devices().unwrap();
        m.mark_devices_modified(); // device copies become the truth
        let before = c.platform().stats_snapshot();
        for d in path {
            m.set_distribution(d).unwrap();
        }
        // Explicit round trip through the column layout and back.
        m.set_distribution(MatrixDistribution::ColBlock).unwrap();
        m.set_distribution(MatrixDistribution::Single(0)).unwrap();
        m.set_distribution(MatrixDistribution::RowBlock { halo }).unwrap();
        let delta = c.platform().stats_snapshot() - before;
        prop_assert_eq!(delta.h2d_transfers, 0, "redistribution must stay device-side");
        prop_assert_eq!(m.to_vec().unwrap(), data);
    }

    // Arbitrary redistribution paths never lose data.
    #[test]
    fn redistribution_paths_preserve_data(
        rows in 1usize..30,
        cols in 1usize..10,
        devices in 1usize..4,
        path in prop::collection::vec(dist_strategy(), 1..5),
    ) {
        let data: Vec<f32> = (0..rows * cols).map(|i| (i * 7 % 97) as f32).collect();
        let c = ctx(devices);
        let m = Matrix::from_vec(&c, rows, cols, data.clone());
        m.ensure_on_devices().unwrap();
        m.mark_devices_modified();
        for d in path {
            m.set_distribution(d).unwrap();
        }
        prop_assert_eq!(m.to_vec().unwrap(), data);
    }

    // After an exchange, every part's full span (halos included) agrees
    // with the owners — the coherence invariant behind Stencil2D.
    #[test]
    fn halo_rows_agree_with_owners_after_exchange(
        rows in 2usize..24,
        cols in 1usize..8,
        devices in 2usize..4,
        halo in 1usize..4,
    ) {
        // Stamp global row r with the value r, upload under RowBlock, then
        // pretend a kernel rewrote the owned rows so the halos are stale.
        let c = ctx(devices);
        let m = Matrix::from_fn(&c, rows, cols, |r, _| r as f32);
        m.set_distribution(MatrixDistribution::RowBlock { halo }).unwrap();
        m.ensure_on_devices().unwrap();
        m.mark_devices_modified();
        m.halo_exchange().unwrap();
        // A stencil that reads one row above and below must see exactly the
        // owner rows' values, under Wrap so edges read wrapped rows.
        let user = UserFn::new(
            "probe",
            "float probe(__global float* in, int r, int c, uint nr, uint nc) { /* sum +-halo */ }",
            move |v: &Stencil2DView<'_, f32>| v.get(-1, 0) + v.get(1, 0),
        );
        let st = Stencil2D::new(user, 1, Boundary2D::Wrap);
        let got = st.apply(&m).unwrap().to_vec().unwrap();
        for r in 0..rows {
            let up = ((r + rows - 1) % rows) as f32;
            let down = ((r + 1) % rows) as f32;
            for col in 0..cols {
                prop_assert_eq!(got[r * cols + col], up + down);
            }
        }
    }
}
