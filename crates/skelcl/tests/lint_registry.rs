//! Registry-wide kernel lint: drive every skeleton family once — including
//! both reduce/scan/allpairs strategies, the with-arguments variants, and
//! the fused pipeline chains — so the shared [`ProgramRegistry`] holds one
//! compiled program per generated-code family, then run the `skelcheck`
//! lint pass over every resident program and require **zero findings**.
//!
//! This is the codegen contract the linter enforces: no barrier under
//! thread-divergent control flow, every statically declared `__local`
//! array inside the device budget, host arg-marshalling arity matching a
//! kernel signature, and every `__global` read guarded against bounds.

use skelcl::skeletons::StencilView;
use skelcl::*;

fn ctx() -> Context {
    Context::new(
        ContextConfig::default()
            .devices(2)
            .spec(vgpu::DeviceSpec::tiny())
            .work_group(64)
            .cache_tag("lint-registry"),
    )
}

fn add_fn() -> UserFn<fn(f32, f32) -> f32> {
    skel_fn!(
        fn ladd(x: f32, y: f32) -> f32 {
            x + y
        }
    )
}

fn mul_fn() -> UserFn<fn(f32, f32) -> f32> {
    skel_fn!(
        fn lmul(x: f32, y: f32) -> f32 {
            x * y
        }
    )
}

fn scale_fn() -> UserFn<fn(f32) -> f32> {
    skel_fn!(
        fn lscale(x: f32) -> f32 {
            x * 0.5 + 1.0
        }
    )
}

const CROSS_SRC: &str =
    "float lcross(__global float* in, int r, int c, uint nr, uint nc) { /* damped cross */ }";

fn cross_pipe() -> UserFn<impl for<'v> Fn(&PipeView<'v, f32>) -> f32 + Clone> {
    UserFn::new("lcross", CROSS_SRC, |v: &PipeView<'_, f32>| {
        0.2 * (v.get(-1, 0) + v.get(1, 0) + v.get(0, -1) + v.get(0, 1)) + 0.1 * v.get(0, 0)
    })
}

fn cross_stencil() -> Stencil2D<f32, f32, impl Fn(&Stencil2DView<'_, f32>) -> f32 + Clone> {
    let user = UserFn::new("lcross", CROSS_SRC, |v: &Stencil2DView<'_, f32>| {
        0.2 * (v.get(-1, 0) + v.get(1, 0) + v.get(0, -1) + v.get(0, 1)) + 0.1 * v.get(0, 0)
    });
    Stencil2D::new(user, 1, Boundary2D::Neumann)
}

fn vec_data(c: &Context, n: usize) -> Vector<f32> {
    Vector::from_vec(c, (0..n).map(|i| (i % 17) as f32 - 8.0).collect())
}

fn mat_data(c: &Context, rows: usize, cols: usize) -> Matrix<f32> {
    Matrix::from_fn(c, rows, cols, |r, cc| ((r * cols + cc) % 13) as f32 - 6.0)
}

/// Compile one program per generated-code family into `c`'s registry.
fn populate_registry(c: &Context) {
    // 1D element-wise families: map, zip, and their with-arguments twins.
    let v = vec_data(c, 100);
    let w = vec_data(c, 100);
    Map::new(scale_fn()).apply(&v).unwrap();
    Zip::new(add_fn()).apply(&v, &w).unwrap();

    let mult_num = UserFn::new(
        "lmult_num",
        "float lmult_num(float input, float number) { return input * number; }",
        |x: f32, env: &KernelEnv<'_>| x * env.scalar::<f32>(0),
    );
    let mut args = Arguments::new();
    args.push(3.0f32);
    MapArgs::new(mult_num, 1).apply(&v, &args).unwrap();

    let fma = UserFn::new(
        "lfma",
        "float lfma(float x, float y, float s) { return x + y * s; }",
        |x: f32, y: f32, env: &KernelEnv<'_>| x + y * env.scalar::<f32>(0),
    );
    ZipArgs::new(fma, 1).apply(&v, &w, &args).unwrap();

    let acc = Vector::from_vec(c, vec![0.0f32; 4]);
    acc.set_distribution(Distribution::Copy).unwrap();
    let scatter = UserFn::new(
        "lscatter",
        "void lscatter(uint i, __global float* acc) { atomic_add(&acc[i % 4], 1.0f); }",
        |i: u32, env: &KernelEnv<'_>| {
            env.vec::<f32>(0).atomic_add(i as usize % 4, 1.0);
        },
    );
    let idx = Vector::from_vec(c, (0..16u32).collect());
    let mut vec_args = Arguments::new();
    vec_args.push(&acc);
    MapVoid::new(scatter, 1).apply(&idx, &vec_args).unwrap();

    // Index generation and the fused zip+reduce.
    MapIndex::new(skel_fn!(
        fn lsq(i: u32) -> u32 {
            i * i
        }
    ))
    .apply(c, 64, Distribution::Block)
    .unwrap();
    MapReduce::new(mul_fn(), add_fn(), 0.0f32)
        .apply(&v, &w)
        .unwrap();

    // Tree reductions and scans, both strategies each.
    Reduce::new(add_fn(), 0.0).apply(&v).unwrap();
    Reduce::new(add_fn(), 0.0)
        .with_strategy(ReduceStrategy::GlobalNaive)
        .apply(&v)
        .unwrap();
    Scan::new(add_fn(), 0.0).apply(&v).unwrap();
    Scan::new(add_fn(), 0.0)
        .with_strategy(ScanStrategy::Conflicting)
        .apply(&v)
        .unwrap();

    // 1D stencil.
    MapOverlap::new(
        UserFn::new(
            "lmo",
            "float lmo(__global float* in, uint i, uint n) { /* in[i-1]+in[i+1] */ }",
            |view: &StencilView<'_, f32>| view.get(-1) + view.get(1),
        ),
        1,
        Boundary::Clamp,
    )
    .apply(&v)
    .unwrap();

    // 2D element-wise (map2d / zip2d) and the 2D stencil, plus the
    // iterate-specialised stencil program.
    let m = mat_data(c, 12, 8);
    let m2 = mat_data(c, 12, 8);
    Map::new(scale_fn()).apply_matrix(&m).unwrap();
    Zip::new(add_fn()).apply_matrix(&m, &m2).unwrap();
    let st = cross_stencil();
    st.apply(&m).unwrap();
    let it = mat_data(c, 12, 8);
    it.set_distribution(MatrixDistribution::RowBlock { halo: 1 })
        .unwrap();
    st.iterate(&it, 2).unwrap();

    // Row/column reductions and their argbest twins.
    ReduceRows::new(add_fn(), 0.0).apply(&m).unwrap();
    ReduceCols::new(add_fn(), 0.0).apply(&m).unwrap();
    let less = skel_fn!(
        fn lless(x: f32, y: f32) -> bool {
            x < y
        }
    );
    ReduceRowsArg::new(less.clone()).apply(&m).unwrap();
    ReduceColsArg::new(less).apply(&m).unwrap();

    // AllPairs: naive, tiled, and the fused post-stage variant.
    let a = mat_data(c, 6, 5);
    let b = mat_data(c, 5, 7);
    AllPairs::new(mul_fn(), add_fn(), 0.0)
        .with_strategy(AllPairsStrategy::Naive)
        .apply(&a, &b)
        .unwrap();
    AllPairs::new(mul_fn(), add_fn(), 0.0)
        .with_strategy(AllPairsStrategy::Tiled { tile: 16 })
        .apply(&a, &b)
        .unwrap();
    AllPairs::new(mul_fn(), add_fn(), 0.0)
        .with_post(scale_fn())
        .apply(&a, &b)
        .unwrap();

    // Fused pipeline chains: pure element-wise group (fused_map2d), a
    // stencil anchor with fused pre/post stages (fused_stencil2d), and a
    // map chain folded into a row reduction (fused_reduce_rows).
    Pipeline::start::<f32>()
        .map(scale_fn())
        .zip_with(&m2, add_fn())
        .run(&m)
        .unwrap();
    Pipeline::start::<f32>()
        .map(scale_fn())
        .stencil(cross_pipe(), 1, Boundary2D::Neumann)
        .map(scale_fn())
        .run(&m)
        .unwrap();
    Pipeline::start::<f32>()
        .map(scale_fn())
        .reduce_rows(&m, add_fn(), 0.0)
        .unwrap();
}

#[test]
fn every_registered_program_lints_clean() {
    let c = ctx();
    populate_registry(&c);

    let resident = c.program_registry().len();
    assert!(
        resident >= 20,
        "expected one program per family in the registry, found {resident}"
    );

    let findings = c.lint_registry();
    assert!(
        findings.is_empty(),
        "lint findings over {} registered programs:\n{}",
        resident,
        findings
            .iter()
            .map(|f| f.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );

    // The pass is visible in the metrics registry: it ran (counter exists)
    // and recorded zero findings.
    assert_eq!(
        c.metrics().counter_value("skelcheck.lint_findings"),
        Some(0)
    );
}
