//! Property-based tests of the 2D reduction subsystem: `ReduceRows` /
//! `ReduceCols` equal sequential host folds **bitwise** for arbitrary
//! shapes (including degenerate 0/1-extent edges), every matrix
//! distribution and 1–4 devices, and the index-carrying `ReduceRowsArg` /
//! `ReduceColsArg` match host argbest scans with lowest-index tie-breaks.
//!
//! Runs under the pinned-seed CI job (`PROPTEST_SEED`), so shrunk
//! degenerate-shape counterexamples reproduce locally.

use proptest::prelude::*;
use skelcl::{
    Context, ContextConfig, Matrix, MatrixDistribution, ReduceCols, ReduceColsArg, ReduceRows,
    ReduceRowsArg,
};
use vgpu::DeviceSpec;

fn ctx(n_devices: usize) -> Context {
    Context::new(
        ContextConfig::default()
            .devices(n_devices)
            .spec(DeviceSpec::tiny())
            .work_group(64)
            .cache_tag("prop-reduce2d"),
    )
}

fn dist_strategy() -> impl Strategy<Value = MatrixDistribution> {
    prop_oneof![
        Just(MatrixDistribution::Single(0)),
        Just(MatrixDistribution::Copy),
        Just(MatrixDistribution::ColBlock),
        (0usize..4).prop_map(|halo| MatrixDistribution::RowBlock { halo }),
    ]
}

/// Awkward, sign-mixed floats whose sums are order-sensitive: any fold
/// that deviates from the canonical ascending order fails bitwise.
fn messy(rows: usize, cols: usize, seed: u32) -> Vec<f32> {
    (0..rows * cols)
        .map(|i| {
            let h = (i as u32).wrapping_mul(2654435761).wrapping_add(seed);
            ((h % 2000) as f32) / 7.0 - 140.0
        })
        .collect()
}

fn sum_rows() -> ReduceRows<f32, fn(f32, f32) -> f32> {
    ReduceRows::new(
        skelcl::skel_fn!(
            fn sum(x: f32, y: f32) -> f32 {
                x + y
            }
        ),
        0.0,
    )
}

fn sum_cols() -> ReduceCols<f32, fn(f32, f32) -> f32> {
    ReduceCols::new(
        skelcl::skel_fn!(
            fn sum(x: f32, y: f32) -> f32 {
                x + y
            }
        ),
        0.0,
    )
}

fn bits(v: &[f32]) -> Vec<u32> {
    v.iter().map(|x| x.to_bits()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    // ReduceRows == ascending-column host fold from the identity, bitwise,
    // for every shape (0-extent edges included), distribution and device
    // count.
    #[test]
    fn reduce_rows_equals_host_fold(
        rows in 0usize..20,
        cols in 0usize..14,
        devices in 1usize..5,
        dist in dist_strategy(),
        seed in 0u32..1000,
    ) {
        let data = messy(rows, cols, seed);
        let want: Vec<f32> = (0..rows)
            .map(|r| data[r * cols..(r + 1) * cols].iter().fold(0.0, |a, &x| a + x))
            .collect();
        let c = ctx(devices);
        let m = Matrix::from_vec(&c, rows, cols, data);
        m.set_distribution(dist).unwrap();
        let got = sum_rows().apply(&m).unwrap().to_vec().unwrap();
        prop_assert_eq!(bits(&got), bits(&want));
    }

    // ReduceCols == ascending-row host fold, same coverage.
    #[test]
    fn reduce_cols_equals_host_fold(
        rows in 0usize..20,
        cols in 0usize..14,
        devices in 1usize..5,
        dist in dist_strategy(),
        seed in 0u32..1000,
    ) {
        let data = messy(rows, cols, seed);
        let want: Vec<f32> = (0..cols)
            .map(|c| (0..rows).fold(0.0, |a, r| a + data[r * cols + c]))
            .collect();
        let c = ctx(devices);
        let m = Matrix::from_vec(&c, rows, cols, data);
        m.set_distribution(dist).unwrap();
        let got = sum_cols().apply(&m).unwrap().to_vec().unwrap();
        prop_assert_eq!(bits(&got), bits(&want));
    }

    // Results are identical across device counts (the 1-device run is the
    // canonical truth the multi-device concat/chain paths must reproduce).
    #[test]
    fn reduce_rows_is_device_count_invariant(
        rows in 1usize..16,
        cols in 1usize..12,
        dist in dist_strategy(),
        seed in 0u32..1000,
    ) {
        let data = messy(rows, cols, seed);
        let single = {
            let c = ctx(1);
            let m = Matrix::from_vec(&c, rows, cols, data.clone());
            sum_rows().apply(&m).unwrap().to_vec().unwrap()
        };
        for devices in [2usize, 4] {
            let c = ctx(devices);
            let m = Matrix::from_vec(&c, rows, cols, data.clone());
            m.set_distribution(dist).unwrap();
            let got = sum_rows().apply(&m).unwrap().to_vec().unwrap();
            prop_assert_eq!(bits(&got), bits(&single), "{} devices {:?}", devices, dist);
        }
    }

    // ReduceRowsArg == host argbest scan (values from a tiny set force
    // ties; the lowest column index must win every one of them).
    #[test]
    fn reduce_rows_arg_equals_host_scan(
        rows in 1usize..16,
        cols in 1usize..14,
        devices in 1usize..5,
        dist in dist_strategy(),
        modulus in 2u32..6,
        seed in 0u32..1000,
    ) {
        let data: Vec<f32> = (0..rows * cols)
            .map(|i| (((i as u32).wrapping_mul(31).wrapping_add(seed)) % modulus) as f32)
            .collect();
        let mut want_v = Vec::with_capacity(rows);
        let mut want_i = Vec::with_capacity(rows);
        for r in 0..rows {
            let row = &data[r * cols..(r + 1) * cols];
            let mut best = 0usize;
            for (cc, &x) in row.iter().enumerate() {
                if x < row[best] {
                    best = cc;
                }
            }
            want_v.push(row[best]);
            want_i.push(best as u32);
        }
        let c = ctx(devices);
        let m = Matrix::from_vec(&c, rows, cols, data);
        m.set_distribution(dist).unwrap();
        let argmin = ReduceRowsArg::new(skelcl::skel_fn!(
            fn less(x: f32, y: f32) -> bool {
                x < y
            }
        ));
        let (v, i) = argmin.apply(&m).unwrap();
        prop_assert_eq!(bits(&v.to_vec().unwrap()), bits(&want_v));
        prop_assert_eq!(i.to_vec().unwrap(), want_i);
    }

    // ReduceColsArg == host argbest scan down each column (the row-index
    // twin: lowest row index must win every tie).
    #[test]
    fn reduce_cols_arg_equals_host_scan(
        rows in 1usize..16,
        cols in 1usize..14,
        devices in 1usize..5,
        dist in dist_strategy(),
        modulus in 2u32..6,
        seed in 0u32..1000,
    ) {
        let data: Vec<f32> = (0..rows * cols)
            .map(|i| (((i as u32).wrapping_mul(37).wrapping_add(seed)) % modulus) as f32)
            .collect();
        let mut want_v = Vec::with_capacity(cols);
        let mut want_i = Vec::with_capacity(cols);
        for cc in 0..cols {
            let mut best = 0usize;
            for r in 0..rows {
                if data[r * cols + cc] < data[best * cols + cc] {
                    best = r;
                }
            }
            want_v.push(data[best * cols + cc]);
            want_i.push(best as u32);
        }
        let c = ctx(devices);
        let m = Matrix::from_vec(&c, rows, cols, data);
        m.set_distribution(dist).unwrap();
        let argmin = ReduceColsArg::new(skelcl::skel_fn!(
            fn less(x: f32, y: f32) -> bool {
                x < y
            }
        ));
        let (v, i) = argmin.apply(&m).unwrap();
        prop_assert_eq!(bits(&v.to_vec().unwrap()), bits(&want_v));
        prop_assert_eq!(i.to_vec().unwrap(), want_i);
    }
}
