//! Round-trip of the telemetry export: everything `export_json` writes
//! must re-parse with the in-tree JSON parser into exactly the structures
//! it came from — including metric names that need escaping (tenant names
//! embed user strings), non-finite-sample `dropped` counts, and the
//! empty/singleton histogram edge cases.

use skelcl::metrics::{MetricValue, MetricsRegistry};
use skelcl::report::json::{parse, Json};
use skelcl::report::{RunReport, SloSummary};
use skelcl::{export_json, Histogram};
use vgpu::{Platform, PlatformConfig, StatsSnapshot};

/// A registry shaped like a real serving run: executor counters, gauges,
/// latency histograms (empty / singleton / populated-with-rejects), and
/// per-tenant metrics whose names carry characters JSON must escape.
fn serving_registry() -> MetricsRegistry {
    let reg = MetricsRegistry::default();
    reg.counter("executor.jobs_completed").add(12);
    reg.gauge("executor.shed_rate").set(0.125);
    // Tenant names are user strings: quotes and backslashes must survive.
    reg.counter("executor.tenant.acme \"prod\\east\".slo_miss")
        .add(3);
    reg.gauge("executor.tenant.acme \"prod\\east\".shed_rate")
        .set(0.5);
    let lat = reg.histogram("executor.latency_s");
    lat.observe(1e-3);
    lat.observe(2e-3);
    lat.observe(8e-3);
    lat.observe(f64::NAN);
    lat.observe(f64::INFINITY);
    reg.histogram("executor.empty_latency_s");
    reg.histogram("executor.single_latency_s").observe(4.5e-3);
    reg
}

fn assert_histograms_equal(parsed: &Json, snap: &skelcl::HistogramSnapshot, what: &str) {
    assert_eq!(
        parsed.get("count").unwrap().as_num(),
        Some(snap.count as f64),
        "{what} count"
    );
    assert_eq!(
        parsed.get("sum").unwrap().as_num(),
        Some(snap.sum),
        "{what} sum"
    );
    assert_eq!(
        parsed.get("dropped").unwrap().as_num(),
        Some(snap.dropped as f64),
        "{what} dropped"
    );
    for (key, want) in [
        ("min", snap.min),
        ("max", snap.max),
        ("p50", snap.p50),
        ("p90", snap.p90),
        ("p99", snap.p99),
    ] {
        match want {
            Some(v) => assert_eq!(parsed.get(key).unwrap().as_num(), Some(v), "{what} {key}"),
            None => assert_eq!(parsed.get(key), Some(&Json::Null), "{what} {key}"),
        }
    }
}

#[test]
fn export_reparses_into_the_exact_snapshot() {
    let reg = serving_registry();
    let snap = reg.snapshot();

    let platform = Platform::new(
        PlatformConfig::default()
            .devices(2)
            .cache_tag("telemetry-roundtrip"),
    );
    let lat = Histogram::default();
    lat.observe(2.5e-3);
    let report = RunReport::collect(
        "roundtrip \"serving\" x2",
        &platform,
        1.0,
        StatsSnapshot::default(),
        &[],
        1e-2,
    )
    .with_latency(lat.snapshot())
    .with_hazards_checked(7)
    .with_slo(SloSummary {
        target_s: 5e-3,
        deadline_misses: 2,
        jobs: 12,
        shed: 4,
    });

    let doc = parse(&export_json(&snap, std::slice::from_ref(&report)))
        .expect("export must be valid JSON");

    // Every metric survives by its exact (unescaped-on-parse) name.
    let metrics = doc.get("metrics").unwrap().as_obj().unwrap();
    assert_eq!(metrics.len(), snap.len(), "no metric gained or lost");
    for (name, value) in &snap {
        let parsed = metrics
            .get(name)
            .unwrap_or_else(|| panic!("metric `{name}` lost in export"));
        match value {
            MetricValue::Counter(c) => {
                assert_eq!(
                    parsed.get("type").unwrap().as_str(),
                    Some("counter"),
                    "{name}"
                );
                assert_eq!(
                    parsed.get("value").unwrap().as_num(),
                    Some(*c as f64),
                    "{name}"
                );
            }
            MetricValue::Gauge(g) => {
                assert_eq!(
                    parsed.get("type").unwrap().as_str(),
                    Some("gauge"),
                    "{name}"
                );
                assert_eq!(parsed.get("value").unwrap().as_num(), Some(*g), "{name}");
            }
            MetricValue::Histogram(h) => {
                assert_eq!(
                    parsed.get("type").unwrap().as_str(),
                    Some("histogram"),
                    "{name}"
                );
                assert_histograms_equal(parsed.get("value").unwrap(), h, name);
            }
        }
    }
    // The escaped tenant name specifically: quotes and backslash intact,
    // and its rejected-sample accounting rode along.
    assert!(
        metrics.contains_key("executor.tenant.acme \"prod\\east\".slo_miss"),
        "escaped tenant metric must round-trip: {:?}",
        metrics.keys().collect::<Vec<_>>()
    );
    let lat_parsed = metrics
        .get("executor.latency_s")
        .unwrap()
        .get("value")
        .unwrap();
    assert_eq!(lat_parsed.get("count").unwrap().as_num(), Some(3.0));
    assert_eq!(
        lat_parsed.get("dropped").unwrap().as_num(),
        Some(2.0),
        "NaN and Inf observations are counted as dropped, not silently eaten"
    );

    // The run report round-trips structurally too.
    let reports = doc.get("run_reports").unwrap().as_arr().unwrap();
    assert_eq!(reports.len(), 1);
    let r = &reports[0];
    assert_eq!(
        r.get("label").unwrap().as_str(),
        Some("roundtrip \"serving\" x2")
    );
    assert_eq!(r.get("window_s").unwrap().as_num(), Some(report.window_s));
    assert_eq!(
        r.get("devices").unwrap().as_arr().unwrap().len(),
        report.devices.len()
    );
    let rf = r.get("roofline").unwrap();
    assert_eq!(
        rf.get("pct_of_modeled_peak").unwrap().as_num(),
        Some(report.roofline.pct_of_modeled_peak())
    );
    assert_eq!(
        rf.get("bound").unwrap().as_str(),
        Some(report.roofline.bound())
    );
    assert_histograms_equal(
        r.get("latency").unwrap(),
        &report.latency.unwrap(),
        "report latency",
    );
    assert_eq!(r.get("hazards_checked").unwrap().as_num(), Some(7.0));
    let slo = r.get("slo").unwrap();
    assert_eq!(slo.get("target_s").unwrap().as_num(), Some(5e-3));
    assert_eq!(slo.get("deadline_misses").unwrap().as_num(), Some(2.0));
    assert_eq!(slo.get("jobs").unwrap().as_num(), Some(12.0));
    assert_eq!(slo.get("shed").unwrap().as_num(), Some(4.0));
    assert_eq!(slo.get("miss_rate").unwrap().as_num(), Some(2.0 / 12.0));
    assert_eq!(slo.get("shed_rate").unwrap().as_num(), Some(4.0 / 16.0));
}
