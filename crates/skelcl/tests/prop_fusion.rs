//! Property-based tests of the lazy [`Pipeline`] fusion subsystem: fused
//! execution is **bit-identical** to the unfused skeleton chain for every
//! shape (including 1×N and N×1 degenerates), boundary mode, device count,
//! starting distribution and stage composition — while launching one kernel
//! per fused group instead of one per stage.

use proptest::prelude::*;
use skelcl::{
    Boundary2D, Context, ContextConfig, Map, Matrix, MatrixDistribution, PipeView, Pipeline,
    PipelineExpr, ReduceRows, Stencil2D, Stencil2DView, UserFn, Zip,
};
use vgpu::DeviceSpec;

fn ctx(n_devices: usize) -> Context {
    Context::new(
        ContextConfig::default()
            .devices(n_devices)
            .spec(DeviceSpec::tiny())
            .work_group(64)
            .cache_tag("prop-fusion"),
    )
}

fn boundary_strategy() -> impl Strategy<Value = Boundary2D> {
    prop_oneof![
        Just(Boundary2D::Neumann),
        Just(Boundary2D::Wrap),
        Just(Boundary2D::Zero),
    ]
}

fn dist_strategy() -> impl Strategy<Value = MatrixDistribution> {
    prop_oneof![
        Just(MatrixDistribution::Single(0)),
        Just(MatrixDistribution::Copy),
        (0usize..3).prop_map(|halo| MatrixDistribution::RowBlock { halo }),
    ]
}

/// Degenerate-friendly shapes: plain rectangles plus forced 1×N and N×1.
fn shape_strategy() -> impl Strategy<Value = (usize, usize)> {
    prop_oneof![
        ((1usize..18), (1usize..12)),
        (Just(1usize), (1usize..24)),
        ((1usize..24), Just(1usize)),
    ]
}

fn test_data(rows: usize, cols: usize, seed: u32) -> Vec<f32> {
    (0..rows * cols)
        .map(|i| {
            ((((i as u32).wrapping_mul(2654435761).wrapping_add(seed)) % 2000) as f32) / 8.0 - 125.0
        })
        .collect()
}

fn scale_fn() -> UserFn<fn(f32) -> f32> {
    skelcl::skel_fn!(
        fn pscale(x: f32) -> f32 {
            x * 0.5 + 1.0
        }
    )
}

fn square_fn() -> UserFn<fn(f32) -> f32> {
    skelcl::skel_fn!(
        fn psquare(x: f32) -> f32 {
            x * x * 0.01
        }
    )
}

fn add_fn() -> UserFn<fn(f32, f32) -> f32> {
    skelcl::skel_fn!(
        fn padd(x: f32, y: f32) -> f32 {
            x + y
        }
    )
}

const CROSS_SRC: &str =
    "float pcross(__global float* in, int r, int c, uint nr, uint nc) { /* damped cross */ }";

fn cross_stencil(
    boundary: Boundary2D,
) -> Stencil2D<f32, f32, impl Fn(&Stencil2DView<'_, f32>) -> f32 + Clone> {
    let user = UserFn::new("pcross", CROSS_SRC, |v: &Stencil2DView<'_, f32>| {
        0.2 * (v.get(-1, 0) + v.get(1, 0) + v.get(0, -1) + v.get(0, 1)) + 0.1 * v.get(0, 0)
    });
    Stencil2D::new(user, 1, boundary)
}

fn cross_pipe() -> UserFn<impl for<'v> Fn(&PipeView<'v, f32>) -> f32 + Clone> {
    UserFn::new("pcross", CROSS_SRC, |v: &PipeView<'_, f32>| {
        0.2 * (v.get(-1, 0) + v.get(1, 0) + v.get(0, -1) + v.get(0, 1)) + 0.1 * v.get(0, 0)
    })
}

fn bits(m: &Matrix<f32>) -> Vec<u32> {
    m.to_vec().unwrap().iter().map(|v| v.to_bits()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    // An empty pipeline is the identity — same bits, zero launches.
    #[test]
    fn empty_pipeline_is_identity(
        (rows, cols) in shape_strategy(),
        devices in 1usize..4,
        dist in dist_strategy(),
        seed in 0u32..1000,
    ) {
        let c = ctx(devices);
        let m = Matrix::from_vec(&c, rows, cols, test_data(rows, cols, seed));
        m.set_distribution(dist).unwrap();
        let before = c.metrics().counter_value("skelcl.pipeline.groups").unwrap_or(0);
        let out = Pipeline::start::<f32>().run(&m).unwrap();
        let after = c.metrics().counter_value("skelcl.pipeline.groups").unwrap_or(0);
        prop_assert_eq!(bits(&out), bits(&m));
        prop_assert_eq!(before, after, "empty pipeline must launch nothing");
    }

    // A single map stage equals the unfused Map skeleton, bit for bit.
    #[test]
    fn single_map_matches_unfused(
        (rows, cols) in shape_strategy(),
        devices in 1usize..4,
        dist in dist_strategy(),
        seed in 0u32..1000,
    ) {
        let c = ctx(devices);
        let data = test_data(rows, cols, seed);
        let m = Matrix::from_vec(&c, rows, cols, data.clone());
        m.set_distribution(dist).unwrap();
        let fused = Pipeline::start::<f32>().map(scale_fn()).run(&m).unwrap();
        let m2 = Matrix::from_vec(&c, rows, cols, data);
        m2.set_distribution(dist).unwrap();
        let unfused = Map::new(scale_fn()).apply_matrix(&m2).unwrap();
        prop_assert_eq!(bits(&fused), bits(&unfused));
    }

    // A single stencil stage equals the unfused Stencil2D skeleton for all
    // three boundary modes.
    #[test]
    fn single_stencil_matches_unfused(
        (rows, cols) in shape_strategy(),
        devices in 1usize..4,
        boundary in boundary_strategy(),
        dist in dist_strategy(),
        seed in 0u32..1000,
    ) {
        let c = ctx(devices);
        let data = test_data(rows, cols, seed);
        let m = Matrix::from_vec(&c, rows, cols, data.clone());
        m.set_distribution(dist).unwrap();
        let fused = Pipeline::start::<f32>()
            .stencil(cross_pipe(), 1, boundary)
            .run(&m)
            .unwrap();
        let m2 = Matrix::from_vec(&c, rows, cols, data);
        m2.set_distribution(dist).unwrap();
        let unfused = cross_stencil(boundary).apply(&m2).unwrap();
        prop_assert_eq!(bits(&fused), bits(&unfused));
    }

    // The canonical fused group — an element-wise chain on both sides of a
    // stencil anchor — equals the three-skeleton chain and launches once.
    #[test]
    fn map_stencil_map_matches_unfused_chain(
        (rows, cols) in shape_strategy(),
        devices in 1usize..4,
        boundary in boundary_strategy(),
        dist in dist_strategy(),
        seed in 0u32..1000,
    ) {
        let c = ctx(devices);
        let data = test_data(rows, cols, seed);
        let m = Matrix::from_vec(&c, rows, cols, data.clone());
        m.set_distribution(dist).unwrap();
        let before = c.metrics().counter_value("skelcl.pipeline.groups").unwrap_or(0);
        let fused = Pipeline::start::<f32>()
            .map(scale_fn())
            .stencil(cross_pipe(), 1, boundary)
            .map(square_fn())
            .run(&m)
            .unwrap();
        let after = c.metrics().counter_value("skelcl.pipeline.groups").unwrap_or(0);
        prop_assert_eq!(after - before, 1, "the whole chain is one launch group");

        let m2 = Matrix::from_vec(&c, rows, cols, data);
        m2.set_distribution(dist).unwrap();
        let step1 = Map::new(scale_fn()).apply_matrix(&m2).unwrap();
        let step2 = cross_stencil(boundary).apply(&step1).unwrap();
        let unfused = Map::new(square_fn()).apply_matrix(&step2).unwrap();
        prop_assert_eq!(bits(&fused), bits(&unfused));
    }

    // A zip stage equals the unfused Zip skeleton.
    #[test]
    fn zip_matches_unfused(
        (rows, cols) in shape_strategy(),
        devices in 1usize..4,
        dist in dist_strategy(),
        seed in 0u32..1000,
    ) {
        let c = ctx(devices);
        let da = test_data(rows, cols, seed);
        let db = test_data(rows, cols, seed.wrapping_add(7));
        let m = Matrix::from_vec(&c, rows, cols, da.clone());
        m.set_distribution(dist).unwrap();
        let other = Matrix::from_vec(&c, rows, cols, db.clone());
        let fused = Pipeline::start::<f32>()
            .map(scale_fn())
            .zip_with(&other, add_fn())
            .run(&m)
            .unwrap();
        let m2 = Matrix::from_vec(&c, rows, cols, da);
        m2.set_distribution(dist).unwrap();
        let other2 = Matrix::from_vec(&c, rows, cols, db);
        let mapped = Map::new(scale_fn()).apply_matrix(&m2).unwrap();
        let unfused = Zip::new(add_fn()).apply_matrix(&mapped, &other2).unwrap();
        prop_assert_eq!(bits(&fused), bits(&unfused));
    }

    // A fused map → reduce_rows equals Map then ReduceRows.
    #[test]
    fn fused_reduce_rows_matches_unfused(
        (rows, cols) in shape_strategy(),
        devices in 1usize..4,
        dist in dist_strategy(),
        seed in 0u32..1000,
    ) {
        let c = ctx(devices);
        let data = test_data(rows, cols, seed);
        let m = Matrix::from_vec(&c, rows, cols, data.clone());
        m.set_distribution(dist).unwrap();
        let fused = Pipeline::start::<f32>()
            .map(square_fn())
            .reduce_rows(&m, add_fn(), 0.0)
            .unwrap();
        let m2 = Matrix::from_vec(&c, rows, cols, data);
        m2.set_distribution(dist).unwrap();
        let mapped = Map::new(square_fn()).apply_matrix(&m2).unwrap();
        let unfused = ReduceRows::new(add_fn(), 0.0).apply(&mapped).unwrap();
        prop_assert_eq!(
            fused.to_vec().unwrap().iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            unfused.to_vec().unwrap().iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
    }

    // Two stencil anchors back to back: the elementwise stage between them
    // fuses into the first anchor's writes; results match the 4-skeleton
    // chain and exactly two groups launch.
    #[test]
    fn stencil_map_stencil_matches_unfused_chain(
        rows in 1usize..14,
        cols in 1usize..10,
        devices in 1usize..4,
        boundary in boundary_strategy(),
        seed in 0u32..1000,
    ) {
        let c = ctx(devices);
        let data = test_data(rows, cols, seed);
        let m = Matrix::from_vec(&c, rows, cols, data.clone());
        c.platform().enable_timeline_trace();
        let before = c.metrics().counter_value("skelcl.pipeline.groups").unwrap_or(0);
        let fused = Pipeline::start::<f32>()
            .stencil(cross_pipe(), 1, boundary)
            .map(scale_fn())
            .stencil(cross_pipe(), 1, boundary)
            .run(&m)
            .unwrap();
        let after = c.metrics().counter_value("skelcl.pipeline.groups").unwrap_or(0);
        prop_assert_eq!(after - before, 2, "two stencil anchors, two launches");

        // The two fused launch groups hand data from the first anchor to the
        // second: the recorded timeline must carry that ordering.
        c.sync();
        let trace = c.platform().take_timeline_trace();
        if let Some(hazard) = skelcl::check::verify_no_buffer_hazards(&trace) {
            panic!("{hazard}");
        }

        let m2 = Matrix::from_vec(&c, rows, cols, data);
        let step1 = cross_stencil(boundary).apply(&m2).unwrap();
        let step2 = Map::new(scale_fn()).apply_matrix(&step1).unwrap();
        let unfused = cross_stencil(boundary).apply(&step2).unwrap();
        prop_assert_eq!(bits(&fused), bits(&unfused));
    }
}
