//! End-to-end span telemetry: skeleton calls emit nested spans that link to
//! the engine-level timeline trace, span counters are exact deltas, and the
//! clock-epoch rules (module docs of `skelcl::trace`) hold — spans from
//! before a `reset_clocks` never leak into the current epoch while the
//! monotonic counters underneath keep accumulating.

use skelcl::{
    verify_span_nesting, Boundary2D, Context, ContextConfig, Matrix, MatrixDistribution, Stencil2D,
    Stencil2DView, UserFn,
};
use vgpu::DeviceSpec;

fn ctx(n_devices: usize) -> Context {
    Context::new(
        ContextConfig::default()
            .devices(n_devices)
            .spec(DeviceSpec::tiny())
            .work_group(64)
            .cache_tag("spans-test"),
    )
}

fn cross_stencil(
    boundary: Boundary2D,
) -> Stencil2D<f32, f32, impl Fn(&Stencil2DView<'_, f32>) -> f32 + Clone> {
    let user = UserFn::new(
        "scross",
        "float scross(__global float* in, int r, int c, uint nr, uint nc) { /* cross */ }",
        |v: &Stencil2DView<'_, f32>| {
            0.2 * (v.get(-1, 0) + v.get(1, 0) + v.get(0, -1) + v.get(0, 1)) + 0.1 * v.get(0, 0)
        },
    );
    Stencil2D::new(user, 1, boundary)
}

#[test]
fn stencil_iterate_emits_nested_spans_linked_to_trace() {
    let c = ctx(4);
    c.enable_spans();
    c.platform().enable_timeline_trace();

    let rows = 32;
    let cols = 16;
    let data: Vec<f32> = (0..rows * cols).map(|i| (i % 97) as f32).collect();
    let m = Matrix::from_vec(&c, rows, cols, data);
    m.set_distribution(MatrixDistribution::RowBlock { halo: 1 })
        .unwrap();
    let st = cross_stencil(Boundary2D::Neumann);
    let out = st.iterate(&m, 3).unwrap();
    out.to_vec().unwrap();
    c.sync();

    let spans = c.take_spans();
    let trace = c.platform().take_timeline_trace();
    assert!(!trace.is_empty(), "timeline trace should have records");

    let iter = spans
        .iter()
        .find(|s| s.name == "stencil2d.iterate")
        .expect("iterate span present");
    assert_eq!(iter.parent, None);
    assert!(iter.duration_s() > 0.0);
    assert_eq!(
        iter.halo_exchanges, 2,
        "fresh input: rounds 2..=n exchange, round 1 reads fresh halos"
    );
    assert!(iter.stats.kernel_launches > 0);
    assert_eq!(
        iter.program_cache_hits + iter.program_cache_misses,
        1,
        "iterate resolves its program exactly once"
    );
    assert!(
        iter.attrs
            .iter()
            .any(|(k, v)| *k == "shape" && v == "32x16"),
        "{:?}",
        iter.attrs
    );

    // Every halo exchange inside iterate is a child span of the iterate span.
    let halos: Vec<_> = spans.iter().filter(|s| s.name == "halo.exchange").collect();
    assert_eq!(halos.len(), 2);
    for h in &halos {
        assert_eq!(h.parent, Some(iter.id));
        assert!(h.stats.d2d_bytes > 0, "halo exchange moves device bytes");
    }

    // Span ↔ engine-trace linkage: the recorded command range is in bounds
    // and the iterate span (which encloses upload + all launches here)
    // covers every record that ran inside it.
    assert!(iter.trace_first + iter.trace_len <= trace.len());
    assert!(iter.trace_len > 0);
    for rec in &trace[iter.trace_first..iter.trace_first + iter.trace_len] {
        assert!(rec.start_s >= iter.start_s - 1e-12);
        assert!(rec.end_s <= iter.end_s + 1e-12);
    }

    assert_eq!(verify_span_nesting(&spans), None);
}

#[test]
fn spans_from_stale_epochs_are_discarded_but_counters_survive() {
    let c = ctx(2);
    c.enable_spans();

    let m = Matrix::from_vec(&c, 8, 8, vec![1.0f32; 64]);
    m.set_distribution(MatrixDistribution::RowBlock { halo: 1 })
        .unwrap();
    let st = cross_stencil(Boundary2D::Wrap);
    st.iterate(&m, 2).unwrap().to_vec().unwrap();
    c.sync();

    let halos_before = c.halo_exchange_count();
    assert_eq!(halos_before, 1, "iterate(2) on fresh input exchanges once");
    assert!(!c.take_spans().is_empty());

    // A span that straddles a clock reset closes in a different epoch and
    // must be silently dropped — its timestamps mix two epochs.
    {
        let mut straddling = c.span("manual.straddling");
        straddling.attr("note", "opened before reset");
        c.platform().reset_clocks();
    }
    assert!(
        c.take_spans().is_empty(),
        "span closed across reset_clocks must be discarded"
    );

    // Records completed *before* the reset are also stale now.
    let st2 = cross_stencil(Boundary2D::Wrap);
    st2.iterate(&m, 2).unwrap().to_vec().unwrap();
    c.sync();
    let spans = c.take_spans();
    assert!(
        spans.iter().all(|s| s.name != "manual.straddling"),
        "stale-epoch spans must never resurface"
    );
    assert!(spans.iter().any(|s| s.name == "stencil2d.iterate"));

    // The monotonic metrics underneath are epoch-independent.
    assert_eq!(c.halo_exchange_count(), halos_before + 1);
    assert_eq!(
        c.metrics().counter_value("skelcl.halo_exchanges"),
        Some(halos_before + 1),
        "registry counter and legacy accessor are the same metric"
    );
}

#[test]
fn spans_are_disabled_by_default() {
    let c = ctx(2);
    assert!(!c.spans_enabled());
    let m = Matrix::from_vec(&c, 8, 8, vec![2.0f32; 64]);
    m.set_distribution(MatrixDistribution::RowBlock { halo: 1 })
        .unwrap();
    cross_stencil(Boundary2D::Zero)
        .iterate(&m, 2)
        .unwrap()
        .to_vec()
        .unwrap();
    assert!(c.take_spans().is_empty(), "no spans unless enabled");
}
