//! Degenerate-shape regression suite: matrices and vectors whose extents
//! are smaller than the device count (empty parts), 1×N / N×1 shapes, and
//! stencil radii that meet or exceed a part's height (clamped halos).
//!
//! These shapes exercise every zero-sized-part guard in the stack — empty
//! uploads/downloads, skipped launches, halo exchange over empty parts,
//! redistribution with empty parts on either side — and pin down that the
//! `halo.min(rows)` clamp in the RowBlock layout is *lossless*: a halo of
//! the full matrix height already holds every row within reach of any
//! wrapped or clamped neighbour access, so results stay bit-identical to
//! the sequential reference even when the radius exceeds the matrix.

use skelcl::skeletons::StencilView;
use skelcl::*;

fn ctx(n: usize) -> Context {
    Context::new(
        ContextConfig::default()
            .devices(n)
            .spec(vgpu::DeviceSpec::tiny())
            .work_group(64)
            .cache_tag("degenerate-shapes"),
    )
}

fn reference(
    data: &[f32],
    rows: usize,
    cols: usize,
    boundary: Boundary2D,
    radius: isize,
) -> Vec<f32> {
    let at = |r: isize, c: isize| -> f32 {
        let (r, c) = match boundary {
            Boundary2D::Neumann => (r.clamp(0, rows as isize - 1), c.clamp(0, cols as isize - 1)),
            Boundary2D::Wrap => (r.rem_euclid(rows as isize), c.rem_euclid(cols as isize)),
            Boundary2D::Zero => {
                if r < 0 || r >= rows as isize || c < 0 || c >= cols as isize {
                    return 0.0;
                }
                (r, c)
            }
        };
        data[r as usize * cols + c as usize]
    };
    let mut out = Vec::new();
    for r in 0..rows as isize {
        for c in 0..cols as isize {
            out.push(at(r - radius, c) + at(r + radius, c) + at(r, c - radius) + at(r, c + radius));
        }
    }
    out
}

fn far_stencil(
    radius: usize,
    boundary: Boundary2D,
) -> Stencil2D<f32, f32, impl Fn(&Stencil2DView<'_, f32>) -> f32 + Clone> {
    let r = radius as isize;
    let user = UserFn::new(
        "far",
        "float far(__global float* in, int r, int c, uint nr, uint nc) { /* 4-point radius-r cross */ }",
        move |v: &Stencil2DView<'_, f32>| v.get(-r, 0) + v.get(r, 0) + v.get(0, -r) + v.get(0, r),
    );
    Stencil2D::new(user, radius, boundary)
}

fn image(rows: usize, cols: usize) -> Vec<f32> {
    (0..rows * cols)
        .map(|i| ((i * 37) % 101) as f32 - 50.0)
        .collect()
}

// The halo clamp regression: radii up to several times the matrix height,
// on matrices down to one row/column, across 1–4 devices and every
// boundary mode, must match the sequential reference exactly. (The
// RowBlock layout clamps the stencil-requested halo to the matrix height;
// this pins down that the clamp never changes an answer.)
#[test]
fn radius_at_or_beyond_part_height_matches_reference() {
    for (rows, cols) in [(1usize, 5usize), (5, 1), (2, 3), (3, 4), (4, 4)] {
        for radius in [1usize, 2, 3, 5, 7] {
            for devices in [1usize, 2, 3, 4] {
                for boundary in [Boundary2D::Neumann, Boundary2D::Wrap, Boundary2D::Zero] {
                    let data = image(rows, cols);
                    let c = ctx(devices);
                    let m = Matrix::from_vec(&c, rows, cols, data.clone());
                    m.set_distribution(MatrixDistribution::RowBlock { halo: 0 })
                        .unwrap();
                    let got = far_stencil(radius, boundary)
                        .apply(&m)
                        .unwrap()
                        .to_vec()
                        .unwrap();
                    let want = reference(&data, rows, cols, boundary, radius as isize);
                    assert_eq!(
                        got, want,
                        "{rows}x{cols} radius {radius} on {devices} device(s), {boundary:?}"
                    );
                }
            }
        }
    }
}

// The iterate path drives its own per-round batched exchange on the
// clamped-halo part sets; it must stay bit-identical to chained applies.
#[test]
fn wide_radius_iterate_matches_chained_applies() {
    for (rows, cols) in [(2usize, 3usize), (3, 4), (1, 4)] {
        for radius in [2usize, 4] {
            for devices in [1usize, 2, 4] {
                for boundary in [Boundary2D::Neumann, Boundary2D::Wrap, Boundary2D::Zero] {
                    let data = image(rows, cols);
                    let c = ctx(devices);
                    let st = far_stencil(radius, boundary);
                    let m = Matrix::from_vec(&c, rows, cols, data.clone());
                    let got = st.iterate(&m, 3).unwrap().to_vec().unwrap();
                    let m2 = Matrix::from_vec(&c, rows, cols, data);
                    let mut cur = st.apply(&m2).unwrap();
                    for _ in 1..3 {
                        cur = st.apply(&cur).unwrap();
                    }
                    let chained = cur.to_vec().unwrap();
                    assert_eq!(
                        got.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                        chained.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                        "{rows}x{cols} radius {radius} on {devices} device(s), {boundary:?}"
                    );
                }
            }
        }
    }
}

// Vectors shorter than the device count leave empty Block parts; every 1D
// skeleton must skip them without phantom launches or wrong answers.
#[test]
fn tiny_vectors_on_many_devices() {
    for len in [1usize, 2, 3] {
        for devices in [2usize, 4] {
            let c = ctx(devices);
            let v = Vector::from_vec(&c, (0..len).map(|i| i as f32 + 1.0).collect());
            v.set_distribution(Distribution::Block).unwrap();
            let s = Reduce::new(
                skel_fn!(
                    fn sum(x: f32, y: f32) -> f32 {
                        x + y
                    }
                ),
                0.0,
            )
            .apply(&v)
            .unwrap();
            assert_eq!(
                s.get_value(),
                (1..=len).sum::<usize>() as f32,
                "reduce len={len} d={devices}"
            );
            let sc = Scan::new(
                skel_fn!(
                    fn sum2(x: f32, y: f32) -> f32 {
                        x + y
                    }
                ),
                0.0,
            )
            .apply(&v)
            .unwrap();
            let want: Vec<f32> = (0..len)
                .map(|i| (0..i).map(|j| j as f32 + 1.0).sum())
                .collect();
            assert_eq!(sc.to_vec().unwrap(), want, "scan len={len} d={devices}");
            let mo = MapOverlap::new(
                UserFn::new(
                    "mo",
                    "float mo(__global float* in, uint i, uint n) { /* in[i-1]+in[i+1] */ }",
                    |view: &StencilView<'_, f32>| view.get(-1) + view.get(1),
                ),
                1,
                Boundary::Clamp,
            )
            .apply(&v)
            .unwrap();
            assert_eq!(
                mo.to_vec().unwrap().len(),
                len,
                "mapoverlap len={len} d={devices}"
            );
        }
    }
}

// Redistribution chains over 1×N, N×1 and smaller-than-device-count
// matrices must be the identity, with empty parts on either side of every
// hop.
#[test]
fn tiny_matrix_redistribution_chains_are_the_identity() {
    for (rows, cols) in [(1usize, 5usize), (5, 1), (2, 3), (3, 2), (1, 1)] {
        for devices in [2usize, 4] {
            let data: Vec<f32> = (0..rows * cols).map(|i| i as f32).collect();
            let c = ctx(devices);
            let m = Matrix::from_vec(&c, rows, cols, data.clone());
            m.set_distribution(MatrixDistribution::RowBlock { halo: 1 })
                .unwrap();
            m.ensure_on_devices().unwrap();
            m.mark_devices_modified();
            for d in [
                MatrixDistribution::ColBlock,
                MatrixDistribution::Single(devices - 1),
                MatrixDistribution::RowBlock { halo: 2 },
                MatrixDistribution::Copy,
                MatrixDistribution::ColBlock,
                MatrixDistribution::RowBlock { halo: 0 },
            ] {
                m.set_distribution(d).unwrap();
            }
            assert_eq!(m.to_vec().unwrap(), data, "{rows}x{cols} d={devices}");
        }
    }
}

// Element-wise matrix skeletons over column-split degenerate shapes.
#[test]
fn zip_matrix_tiny_shapes() {
    for (rows, cols) in [(1usize, 4usize), (4, 1), (2, 3)] {
        for devices in [2usize, 4] {
            let c = ctx(devices);
            let a = Matrix::from_fn(&c, rows, cols, |r, cc| (r * cols + cc) as f32);
            let b = Matrix::from_fn(&c, rows, cols, |_, _| 2.0f32);
            a.set_distribution(MatrixDistribution::ColBlock).unwrap();
            b.set_distribution(MatrixDistribution::ColBlock).unwrap();
            let z = Zip::new(skel_fn!(
                fn mul(x: f32, y: f32) -> f32 {
                    x * y
                }
            ));
            let out = z.apply_matrix(&a, &b).unwrap().to_vec().unwrap();
            let want: Vec<f32> = (0..rows * cols).map(|i| i as f32 * 2.0).collect();
            assert_eq!(out, want, "{rows}x{cols} d={devices}");
        }
    }
}

// rows < devices: the two empty parts must neither launch nor fabricate
// halo-exchange events — iterate(n) on stale Wrap input counts exactly n.
#[test]
fn exchange_events_on_tiny_matrices_count_exactly() {
    let c = ctx(4);
    let m = Matrix::from_vec(&c, 2, 3, (0..6).map(|i| i as f32).collect());
    m.set_distribution(MatrixDistribution::RowBlock { halo: 1 })
        .unwrap();
    m.ensure_on_devices().unwrap();
    m.mark_devices_modified();
    let st = Stencil2D::new(
        UserFn::new(
            "idp",
            "float idp(__global float* in, int r, int c, uint nr, uint nc) { /* +-1 rows */ }",
            |v: &Stencil2DView<'_, f32>| v.get(-1, 0) + v.get(1, 0),
        ),
        1,
        Boundary2D::Wrap,
    );
    let base = c.halo_exchange_count();
    st.iterate(&m, 5).unwrap();
    assert_eq!(
        c.halo_exchange_count() - base,
        5,
        "one exchange event per iteration, empty parts contribute none"
    );
}

// 2D reductions over empty-part layouts (the tentpole's own degenerate
// edge): rows/cols below the device count, every distribution.
#[test]
fn reduce2d_with_empty_parts_matches_host_folds() {
    for (rows, cols) in [(1usize, 6usize), (6, 1), (2, 2)] {
        let data = image(rows, cols);
        let want_rows: Vec<f32> = (0..rows)
            .map(|r| {
                data[r * cols..(r + 1) * cols]
                    .iter()
                    .fold(0.0, |a, &x| a + x)
            })
            .collect();
        let want_cols: Vec<f32> = (0..cols)
            .map(|c| (0..rows).fold(0.0, |a, r| a + data[r * cols + c]))
            .collect();
        for devices in [2usize, 4] {
            for dist in [
                MatrixDistribution::RowBlock { halo: 1 },
                MatrixDistribution::ColBlock,
                MatrixDistribution::Copy,
            ] {
                let c = ctx(devices);
                let m = Matrix::from_vec(&c, rows, cols, data.clone());
                m.set_distribution(dist).unwrap();
                let rr = ReduceRows::new(
                    skel_fn!(
                        fn s1(x: f32, y: f32) -> f32 {
                            x + y
                        }
                    ),
                    0.0,
                )
                .apply(&m)
                .unwrap();
                let rc = ReduceCols::new(
                    skel_fn!(
                        fn s2(x: f32, y: f32) -> f32 {
                            x + y
                        }
                    ),
                    0.0,
                )
                .apply(&m)
                .unwrap();
                assert_eq!(
                    rr.to_vec().unwrap(),
                    want_rows,
                    "{rows}x{cols} {devices} {dist:?}"
                );
                assert_eq!(
                    rc.to_vec().unwrap(),
                    want_cols,
                    "{rows}x{cols} {devices} {dist:?}"
                );
            }
        }
    }
}
