//! Umbrella crate for the SkelCL reproduction workspace.
//!
//! Re-exports the public surface of every member crate so that examples and
//! integration tests can use a single dependency. See the individual crates
//! for the real implementations:
//!
//! * [`vgpu`] — the virtual OpenCL-like multi-GPU platform (substrate).
//! * [`skelcl`] — the skeleton library itself (the paper's contribution).
//! * [`skelcl_baselines`] — hand-written OpenCL-style / CUDA-style baselines.
//! * [`skelcl_mandel`] / [`skelcl_osem`] — the paper's two applications.
//! * [`skelcl_executor`] — the multi-tenant executor service layer.
//! * [`skelcl_loc`] — program-size (LoC) accounting.

pub use skelcl;
pub use skelcl_baselines as baselines;
pub use skelcl_executor as executor;
pub use skelcl_loc as loc;
pub use skelcl_mandel as mandel;
pub use skelcl_osem as osem;
pub use vgpu;
